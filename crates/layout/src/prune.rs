//! Compile-time partition pruning — dv-prune's runtime half.
//!
//! After AFC alignment, every aligned file chunk carries its implicit
//! attribute values: outer-loop coordinates and file-binding variables
//! as constants, the innermost loop as an affine progression. Those
//! are exactly a closed interval hull per implicit attribute, so the
//! three-valued evaluator ([`dv_sql::ternary`]) can decide the WHERE
//! clause for the *whole chunk* before any byte is read:
//!
//! * [`PruneVerdict::Empty`] — the predicate is false for every row
//!   the chunk can produce: the chunk is dropped from the plan before
//!   I/O coalescing, readahead or caching see it.
//! * [`PruneVerdict::Full`] — the predicate is true for every row:
//!   the executor skips the filter kernel for the chunk.
//! * [`PruneVerdict::Unknown`] — read and filter as usual.
//!
//! Soundness: the hull env contains only implicit attributes (stored
//! attributes are absent, which the evaluator treats as unbounded),
//! every hull is exact for its chunk, and UDF subtrees plus non-finite
//! arithmetic degrade to `Unknown` inside the evaluator itself — so a
//! NaN stored in a float column can never be pruned into or out of
//! the result, and pruned execution is bit-identical to unpruned
//! (`tests/prune_diff.rs` checks this differentially).

use dv_sql::ternary::{abstract_eval, HullEnv, Ternary};
use dv_sql::BoundExpr;

use crate::afc::{Afc, ImplicitValue, WorkingSet};

/// Three-valued static verdict for one aligned file chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneVerdict {
    /// Provably no qualifying record — skip the chunk entirely.
    Empty,
    /// Predicate provably true over every row — skip the filter.
    Full,
    /// Undecidable — read and filter normally.
    Unknown,
}

/// Prune result for one node plan, threaded planner → executor →
/// `QueryStats`. `verdicts` is parallel to the plan's retained AFC
/// list (`Empty` chunks are already dropped and only counted here).
#[derive(Debug, Clone, Default)]
pub struct PruneCertificate {
    /// Verdict per *retained* AFC (`Full` or `Unknown` only).
    pub verdicts: Vec<PruneVerdict>,
    /// AFC count before pruning.
    pub groups_total: u64,
    /// AFCs dropped as provably empty.
    pub groups_pruned: u64,
    /// Retained AFCs whose filter can be skipped.
    pub groups_full: u64,
    /// Bytes the dropped AFCs would have read.
    pub bytes_avoided: u64,
}

impl PruneCertificate {
    /// Certificate for a plan that was not pruned (no predicate, or
    /// pruning disabled): everything retained, everything `Unknown`.
    pub fn passthrough(afcs: usize) -> PruneCertificate {
        PruneCertificate {
            verdicts: vec![PruneVerdict::Unknown; afcs],
            groups_total: afcs as u64,
            ..PruneCertificate::default()
        }
    }
}

/// The closed hull environment of one AFC: every implicit attribute
/// mapped to the exact interval of values it takes over the chunk's
/// rows. Stored attributes are deliberately absent (unbounded).
pub fn afc_hull_env(afc: &Afc, working: &WorkingSet) -> HullEnv {
    let mut env = HullEnv::new();
    for (pos, imp) in &afc.implicits {
        let attr = working.attrs[*pos];
        let (lo, hi) = match imp {
            ImplicitValue::Const(v) => {
                let x = v.as_f64();
                (x, x)
            }
            ImplicitValue::Affine { start, step, .. } => {
                let a = *start as f64;
                let last = *start as i128 + *step as i128 * afc.num_rows.saturating_sub(1) as i128;
                let b = last as f64;
                (a.min(b), a.max(b))
            }
        };
        if lo.is_finite() && hi.is_finite() {
            env.insert(attr, (lo, hi));
        }
    }
    env
}

/// Decide one AFC against the predicate.
pub fn verdict_for_afc(pred: &BoundExpr, afc: &Afc, working: &WorkingSet) -> PruneVerdict {
    match abstract_eval(pred, &afc_hull_env(afc, working)) {
        Ternary::False => PruneVerdict::Empty,
        Ternary::True => PruneVerdict::Full,
        Ternary::Unknown => PruneVerdict::Unknown,
    }
}

/// Prune a node's AFC list. Returns the retained AFCs and the
/// certificate accounting for what was dropped. With no predicate the
/// list passes through untouched (all-`Unknown` certificate).
pub fn prune_afcs(
    predicate: Option<&BoundExpr>,
    working: &WorkingSet,
    afcs: Vec<Afc>,
) -> (Vec<Afc>, PruneCertificate) {
    let Some(pred) = predicate else {
        let cert = PruneCertificate::passthrough(afcs.len());
        return (afcs, cert);
    };
    let groups_total = afcs.len() as u64;
    let mut kept = Vec::with_capacity(afcs.len());
    let mut verdicts = Vec::with_capacity(afcs.len());
    let mut cert = PruneCertificate::default();
    for afc in afcs {
        match verdict_for_afc(pred, &afc, working) {
            PruneVerdict::Empty => {
                cert.groups_pruned += 1;
                cert.bytes_avoided += afc.bytes_read();
            }
            v => {
                if v == PruneVerdict::Full {
                    cert.groups_full += 1;
                }
                verdicts.push(v);
                kept.push(afc);
            }
        }
    }
    cert.groups_total = groups_total;
    cert.verdicts = verdicts;
    (kept, cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afc::{AfcEntry, AfcField};
    use dv_sql::{bind, parse, UdfRegistry};
    use dv_types::{Attribute, DataType, Schema, Value};

    fn model() -> dv_descriptor::DatasetModel {
        // Only schema/working-set machinery is exercised here; reuse a
        // minimal descriptor to get a model with the right attrs.
        dv_descriptor::compile(
            r#"
[S]
REL = short int
TIME = int
SOIL = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATASET "leaf" {
    DATASPACE { LOOP TIME 1:100:1 { SOIL } }
    DATA { DIR[0]/f$REL.dat REL = 0:1:1 }
  }
  DATA { DATASET leaf }
}
"#,
        )
        .unwrap()
    }

    fn schema() -> Schema {
        Schema::new(
            "S",
            vec![
                Attribute::new("REL", DataType::Short),
                Attribute::new("TIME", DataType::Int),
                Attribute::new("SOIL", DataType::Float),
            ],
        )
        .unwrap()
    }

    fn pred(sql: &str) -> BoundExpr {
        let q = parse(sql).unwrap();
        bind(&q, &schema(), &UdfRegistry::with_builtins()).unwrap().predicate.unwrap()
    }

    /// An AFC with TIME affine over [start, start+rows-1], REL const,
    /// SOIL stored.
    fn afc(rel: i64, time_start: i64, rows: u64) -> Afc {
        Afc {
            num_rows: rows,
            entries: vec![AfcEntry { file: 0, offset: 0, stride: 4 }],
            fields: vec![AfcField {
                entry: 0,
                byte_off: 0,
                dtype: DataType::Float,
                working_pos: 2,
            }],
            implicits: vec![
                (0, ImplicitValue::Const(Value::Short(rel as i16))),
                (1, ImplicitValue::Affine { start: time_start, step: 1, dtype: DataType::Int }),
            ],
        }
    }

    fn working() -> WorkingSet {
        WorkingSet::new(&model(), vec![0, 1, 2])
    }

    #[test]
    fn hull_env_from_implicits() {
        let env = afc_hull_env(&afc(1, 10, 5), &working());
        assert_eq!(env.get(&0), Some(&(1.0, 1.0)));
        assert_eq!(env.get(&1), Some(&(10.0, 14.0)));
        assert_eq!(env.get(&2), None); // stored → unbounded
    }

    #[test]
    fn verdicts_per_chunk() {
        let w = working();
        let p = pred("SELECT SOIL FROM D WHERE TIME <= 12");
        assert_eq!(verdict_for_afc(&p, &afc(0, 1, 10), &w), PruneVerdict::Full);
        assert_eq!(verdict_for_afc(&p, &afc(0, 20, 10), &w), PruneVerdict::Empty);
        assert_eq!(verdict_for_afc(&p, &afc(0, 10, 10), &w), PruneVerdict::Unknown);
        // Stored attribute: never decidable.
        let p = pred("SELECT SOIL FROM D WHERE SOIL > 0.5");
        assert_eq!(verdict_for_afc(&p, &afc(0, 1, 10), &w), PruneVerdict::Unknown);
    }

    #[test]
    fn prune_drops_and_accounts() {
        let w = working();
        let p = pred("SELECT SOIL FROM D WHERE TIME <= 12");
        let afcs = vec![afc(0, 1, 10), afc(0, 10, 10), afc(0, 20, 10)];
        let (kept, cert) = prune_afcs(Some(&p), &w, afcs);
        assert_eq!(kept.len(), 2);
        assert_eq!(cert.verdicts, vec![PruneVerdict::Full, PruneVerdict::Unknown]);
        assert_eq!(cert.groups_total, 3);
        assert_eq!(cert.groups_pruned, 1);
        assert_eq!(cert.groups_full, 1);
        assert_eq!(cert.bytes_avoided, 40);
    }

    #[test]
    fn no_predicate_passes_through() {
        let w = working();
        let (kept, cert) = prune_afcs(None, &w, vec![afc(0, 1, 10), afc(0, 11, 10)]);
        assert_eq!(kept.len(), 2);
        assert_eq!(cert.groups_total, 2);
        assert_eq!(cert.groups_pruned, 0);
        assert_eq!(cert.groups_full, 0);
        assert_eq!(cert.verdicts, vec![PruneVerdict::Unknown; 2]);
    }

    #[test]
    fn udf_predicate_never_prunes() {
        let w = working();
        let p = pred("SELECT SOIL FROM D WHERE SPEED(SOIL, SOIL, SOIL) < 30.0");
        let (kept, cert) = prune_afcs(Some(&p), &w, vec![afc(0, 1, 10)]);
        assert_eq!(kept.len(), 1);
        assert_eq!(cert.verdicts, vec![PruneVerdict::Unknown]);
    }
}
