//! Plan-time morsel assignment for intra-node parallel execution.
//!
//! A *morsel* is a run of consecutive coalesce groups (see
//! [`crate::io::group_afcs`]) that one worker thread executes as a
//! unit: fetch each group, decode, filter, partition, move. Morsels
//! are computed once per node schedule, before any worker starts, and
//! each carries two precomputed anchors that make execution order
//! irrelevant to the result:
//!
//! * `base_rows` — the number of rows every earlier AFC in the node's
//!   schedule materializes. Round-robin partitioning assigns a row by
//!   its *global scanned ordinal* (`base_rows` + the row's pre-filter
//!   index), a pure plan-time function of the schedule, so the
//!   row → processor map is identical no matter which worker runs the
//!   morsel or when.
//! * `seq` — the morsel's position in schedule order. Mover blocks are
//!   tagged with their starting scanned ordinal, so the absorbing side
//!   can reassemble output in schedule order regardless of steal
//!   order.
//!
//! Sizing is adaptive in the style of a linker's work-grouping
//! heuristic: aim for [`MORSELS_PER_THREAD`] morsels per worker so the
//! steal scheduler has enough slack to even out skew, but never split
//! below a coalesce group (the I/O fetch unit) or
//! [`MIN_MORSEL_BYTES`].

use std::ops::Range;

use crate::afc::Afc;
use crate::io::group_afcs;

/// Morsels the sizing heuristic aims to hand each worker thread.
/// Enough that work stealing can even out skewed schedules (a worker
/// that drew a slow morsel loses at most ~1/Nth of its share), small
/// enough that per-morsel scheduling overhead stays negligible.
pub const MORSELS_PER_THREAD: usize = 8;

/// Floor for the adaptive morsel size: below this, claim/steal
/// overhead dominates the work.
pub const MIN_MORSEL_BYTES: u64 = 64 * 1024;

/// One unit of intra-node work: a run of consecutive coalesce groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// Position in schedule order (0-based).
    pub seq: usize,
    /// AFC index range covered (into the node's schedule).
    pub afcs: Range<usize>,
    /// Coalesce-group index range covered (into
    /// [`MorselPlan::groups`]).
    pub groups: Range<usize>,
    /// Rows materialized by all AFCs before `afcs.start` — the global
    /// scanned ordinal of this morsel's first row.
    pub base_rows: u64,
    /// Bytes this morsel reads (the work-stealing weight).
    pub bytes: u64,
}

/// A node schedule split into byte-budgeted, group-aligned morsels.
#[derive(Debug, Clone, Default)]
pub struct MorselPlan {
    /// The coalesce groups the morsels are built from (the I/O fetch
    /// units; each morsel covers a consecutive run of them).
    pub groups: Vec<Range<usize>>,
    /// The morsels, in schedule order (`morsels[i].seq == i`).
    pub morsels: Vec<Morsel>,
    /// The byte target each morsel was grown to.
    pub target_bytes: u64,
    /// Total bytes of the schedule.
    pub total_bytes: u64,
}

/// The adaptive morsel size: aim for `threads × MORSELS_PER_THREAD`
/// morsels over the schedule, floored at [`MIN_MORSEL_BYTES`]. A
/// non-zero `override_bytes` (the `QueryOptions::morsel_bytes` /
/// `--morsel-bytes` knob) wins outright.
pub fn adaptive_morsel_bytes(total_bytes: u64, threads: usize, override_bytes: u64) -> u64 {
    if override_bytes > 0 {
        return override_bytes;
    }
    let want = (threads.max(1) * MORSELS_PER_THREAD) as u64;
    (total_bytes / want).max(MIN_MORSEL_BYTES)
}

impl MorselPlan {
    /// Split a node's AFC schedule into morsels: coalesce groups (the
    /// I/O fetch unit) folded together until each morsel reaches the
    /// adaptive byte target. The groups themselves are capped at
    /// `min(group_bytes, target)` — a schedule smaller than one
    /// configured coalesce group must still split into enough fetch
    /// units to keep a pool busy (fetches stay coalesced *within* each
    /// group; parallelism trades away only cross-morsel coalescing).
    pub fn build(
        afcs: &[Afc],
        group_bytes: u64,
        threads: usize,
        override_bytes: u64,
    ) -> MorselPlan {
        let total_bytes: u64 = afcs.iter().map(Afc::bytes_read).sum();
        let target_bytes = adaptive_morsel_bytes(total_bytes, threads, override_bytes);
        let groups = group_afcs(afcs, group_bytes.min(target_bytes).max(1));

        // Scanned-ordinal prefix: rows before each AFC.
        let mut row_prefix = Vec::with_capacity(afcs.len() + 1);
        let mut rows = 0u64;
        row_prefix.push(0u64);
        for afc in afcs {
            rows += afc.num_rows;
            row_prefix.push(rows);
        }

        let mut morsels = Vec::new();
        let mut g_start = 0usize;
        let mut acc = 0u64;
        for (gi, g) in groups.iter().enumerate() {
            acc += afcs[g.clone()].iter().map(Afc::bytes_read).sum::<u64>();
            if acc >= target_bytes || gi + 1 == groups.len() {
                let afc_lo = groups[g_start].start;
                let afc_hi = g.end;
                morsels.push(Morsel {
                    seq: morsels.len(),
                    afcs: afc_lo..afc_hi,
                    groups: g_start..gi + 1,
                    base_rows: row_prefix[afc_lo],
                    bytes: acc,
                });
                g_start = gi + 1;
                acc = 0;
            }
        }
        MorselPlan { groups, morsels, target_bytes, total_bytes }
    }

    /// Worker count for a requested thread count: never more workers
    /// than morsels (an empty schedule gets zero workers).
    pub fn worker_count(&self, threads: usize) -> usize {
        threads.max(1).min(self.morsels.len())
    }

    /// Initial per-worker queues: contiguous runs of morsels split by
    /// *bytes* (not count — the skew bug the old striping had), greedy
    /// to each worker's proportional byte quota. Contiguity keeps a
    /// worker's fetches mostly sequential on disk; the steal scheduler
    /// corrects any residual imbalance at run time.
    pub fn assign(&self, workers: usize) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); workers];
        if workers == 0 {
            return out;
        }
        let n = self.morsels.len();
        let mut w = 0usize;
        let mut cum = 0u128;
        let total = self.total_bytes.max(1) as u128;
        for (i, m) in self.morsels.iter().enumerate() {
            if !out[w].is_empty() && w + 1 < workers {
                let hit_quota = cum * workers as u128 >= total * (w as u128 + 1);
                // Each remaining worker must still receive >= 1 morsel.
                let must_leave = n - i < workers - w;
                if hit_quota || must_leave {
                    w += 1;
                }
            }
            out[w].push(i);
            cum += m.bytes as u128;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afc::AfcEntry;

    fn afc(file: usize, rows: u64, stride: u64) -> Afc {
        Afc {
            num_rows: rows,
            entries: vec![AfcEntry { file, offset: 0, stride }],
            fields: Vec::new(),
            implicits: Vec::new(),
        }
    }

    #[test]
    fn adaptive_target_scales_with_threads() {
        let mib = 1024 * 1024;
        // 64 MiB over 4 threads → 32 morsels of 2 MiB.
        assert_eq!(adaptive_morsel_bytes(64 * mib, 4, 0), 2 * mib);
        // More threads → smaller morsels.
        assert_eq!(adaptive_morsel_bytes(64 * mib, 8, 0), mib);
        // Tiny schedules clamp at the floor.
        assert_eq!(adaptive_morsel_bytes(100, 8, 0), MIN_MORSEL_BYTES);
        // Explicit override wins.
        assert_eq!(adaptive_morsel_bytes(64 * mib, 4, 12345), 12345);
    }

    #[test]
    fn build_covers_schedule_with_correct_bases() {
        // 16 AFCs × 100 rows × 1 KiB rows.
        let afcs: Vec<Afc> = (0..16).map(|f| afc(f, 100, 1024)).collect();
        let plan = MorselPlan::build(&afcs, 128 * 1024, 2, 200 * 1024);
        assert!(plan.morsels.len() > 1, "schedule should split");
        // Coverage: morsels tile the AFC list in order, gap-free.
        let mut next_afc = 0usize;
        let mut next_group = 0usize;
        for (i, m) in plan.morsels.iter().enumerate() {
            assert_eq!(m.seq, i);
            assert_eq!(m.afcs.start, next_afc);
            assert_eq!(m.groups.start, next_group);
            assert_eq!(m.base_rows, next_afc as u64 * 100);
            next_afc = m.afcs.end;
            next_group = m.groups.end;
        }
        assert_eq!(next_afc, afcs.len());
        assert_eq!(next_group, plan.groups.len());
        assert_eq!(plan.total_bytes, 16 * 100 * 1024);
    }

    #[test]
    fn empty_schedule_builds_empty_plan() {
        let plan = MorselPlan::build(&[], 1024, 4, 0);
        assert!(plan.morsels.is_empty());
        assert_eq!(plan.worker_count(8), 0);
    }

    #[test]
    fn worker_count_never_exceeds_morsels() {
        let afcs: Vec<Afc> = (0..4).map(|f| afc(f, 10, 64)).collect();
        let plan = MorselPlan::build(&afcs, 64, 8, 64);
        assert!(plan.worker_count(8) <= plan.morsels.len());
        assert_eq!(plan.worker_count(1), 1);
    }

    /// The skew regression the old `afcs.chunks()` striping failed:
    /// one giant file's AFCs next to many tiny files'. Splitting by
    /// AFC *count* would give two of four workers almost all bytes;
    /// splitting by bytes keeps the initial queues near-even.
    #[test]
    fn assignment_splits_by_bytes_not_count() {
        let mut afcs = Vec::new();
        // 64 × 1 MiB chunks of the giant file 0 ...
        for _ in 0..64 {
            afcs.push(afc(0, 1024, 1024));
        }
        // ... then 64 × 16 KiB tiny files.
        for f in 1..=64 {
            afcs.push(afc(f, 16, 1024));
        }
        let plan = MorselPlan::build(&afcs, 256 * 1024, 4, 0);
        let queues = plan.assign(4);
        let bytes_of = |q: &Vec<usize>| q.iter().map(|&m| plan.morsels[m].bytes).sum::<u64>();
        let per_worker: Vec<u64> = queues.iter().map(bytes_of).collect();
        let mean = plan.total_bytes / 4;
        for (w, &b) in per_worker.iter().enumerate() {
            assert!(
                b as f64 <= mean as f64 * 1.4 && b as f64 >= mean as f64 * 0.6,
                "worker {w} got {b} bytes, mean {mean} ({per_worker:?})"
            );
        }
        // The old count split (128 AFCs / 4 = 32 each) would have put
        // 32 MiB on each of the first two workers and 0.5 MiB on each
        // of the last two — assert the schedule really is that skewed.
        let count_split: u64 = afcs[..32].iter().map(Afc::bytes_read).sum();
        assert!(count_split > mean * 15 / 10, "fixture lost its skew");
    }

    #[test]
    fn assignment_gives_every_worker_work() {
        let afcs: Vec<Afc> = (0..8).map(|f| afc(f, 100, 1024)).collect();
        let plan = MorselPlan::build(&afcs, 100 * 1024, 8, 100 * 1024);
        let workers = plan.worker_count(8);
        let queues = plan.assign(workers);
        for (w, q) in queues.iter().enumerate() {
            assert!(!q.is_empty(), "worker {w} idle from the start");
        }
        // Every morsel assigned exactly once, in order.
        let flat: Vec<usize> = queues.iter().flatten().copied().collect();
        assert_eq!(flat, (0..plan.morsels.len()).collect::<Vec<_>>());
    }
}
