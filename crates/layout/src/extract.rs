//! The generated *extraction function*: executing AFCs against the
//! filesystem.
//!
//! For each AFC, the extractor obtains one contiguous byte run per
//! entry (`num_rows × stride` bytes starting at the entry offset —
//! exactly the access pattern the paper describes) and then assembles
//! working rows by decoding scheduled fields and supplying implicit
//! values. Runs arrive either from direct per-entry reads (the
//! fallback path) or as slices of an [`crate::io::IoScheduler`]'s
//! coalesced segments (the default columnar path).

use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use dv_descriptor::{codec, CodecKind, DatasetModel};
use dv_types::{CancelToken, ColumnBlock, ColumnData, ColumnGen, DvError, Result, RowBlock, Value};
use std::sync::RwLock;

use crate::afc::{Afc, ImplicitValue};
use crate::io::{missed_run, FetchedGroup, FileGen};
use crate::plan::{Certificate, CompiledDataset};

/// Maximum open file handles pooled per extractor.
const HANDLE_CACHE_CAP: usize = 256;

struct HandleSlot {
    file: Arc<File>,
    last_used: AtomicU64,
}

/// LRU-bounded pool of open file handles shared across worker
/// threads. Lookups take only the shared lock (recency is an atomic
/// tick); opens and evictions take the exclusive lock.
struct HandlePool {
    cap: usize,
    tick: AtomicU64,
    map: RwLock<HashMap<usize, HandleSlot>>,
}

impl HandlePool {
    fn new(cap: usize) -> HandlePool {
        HandlePool { cap, tick: AtomicU64::new(0), map: RwLock::new(HashMap::new()) }
    }

    fn get(&self, file: usize) -> Option<Arc<File>> {
        let map = self.map.read().expect("handle pool poisoned");
        let slot = map.get(&file)?;
        slot.last_used.store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        Some(Arc::clone(&slot.file))
    }

    fn insert(&self, file: usize, handle: Arc<File>) -> Arc<File> {
        let mut map = self.map.write().expect("handle pool poisoned");
        // A racing opener may have inserted already; keep whichever
        // handle is in the pool (both point at the same file).
        if let Some(slot) = map.get(&file) {
            return Arc::clone(&slot.file);
        }
        while map.len() >= self.cap {
            let oldest = map
                .iter()
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
                .expect("non-empty pool");
            map.remove(&oldest);
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        map.insert(file, HandleSlot { file: Arc::clone(&handle), last_used: AtomicU64::new(tick) });
        handle
    }

    fn remove(&self, file: usize) {
        self.map.write().expect("handle pool poisoned").remove(&file);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.read().expect("handle pool poisoned").len()
    }
}

/// A handle pool that outlives any one query: the server constructs
/// one per dataset and threads it into every query's extractors, so
/// concurrent queries share open descriptors instead of each opening
/// (and each counting against) their own. The pool stays LRU-bounded
/// at [`HANDLE_CACHE_CAP`] regardless of how many queries share it.
#[derive(Clone)]
pub struct SharedHandles {
    pool: Arc<HandlePool>,
}

impl SharedHandles {
    /// A fresh pool with the standard capacity.
    pub fn new() -> SharedHandles {
        SharedHandles { pool: Arc::new(HandlePool::new(HANDLE_CACHE_CAP)) }
    }
}

impl Default for SharedHandles {
    fn default() -> SharedHandles {
        SharedHandles::new()
    }
}

/// Generation-stamped decoded logical images, keyed by file ordinal.
type DecodedMemo = Mutex<HashMap<usize, (FileGen, Arc<Vec<u8>>)>>;

/// Executes AFCs on one node's files. Cloneable across worker threads;
/// the open-file pool is shared.
#[derive(Clone)]
pub struct Extractor {
    paths: Arc<Vec<PathBuf>>,
    /// The resolved model: per-file codecs and layouts for decoding
    /// non-affine files, attribute types for CSV cells.
    model: Arc<DatasetModel>,
    /// Working-row width (number of attributes to materialize).
    row_width: usize,
    handles: Arc<HandlePool>,
    /// Decoded logical images of non-affine files, memoized per
    /// generation for the direct (per-entry) read path — without it
    /// every AFC of a CSV/zstd file would re-decode the whole file.
    /// The scheduled path deliberately bypasses this memo: its warmth
    /// comes from the segment cache, so that cache ablations measure
    /// real re-decode cost.
    decoded: Arc<DecodedMemo>,
    /// `DV_ROWMAJOR` ablation flag, read once at construction rather
    /// than once per AFC on the hot path.
    rowmajor: bool,
    /// True when the compiled dataset carries a `Safe` verification
    /// certificate: per-row bounds checks in the columnar decode are
    /// provably redundant and the unchecked kernel runs instead.
    /// `DV_CHECKED_DECODE` forces the checked path (ablation).
    unchecked: bool,
    /// Per-query cancellation flag, polled once per byte run so an
    /// abort or deadline takes effect mid-extraction.
    cancel: CancelToken,
}

impl Extractor {
    /// Build an extractor for a compiled dataset and a given working
    /// row width.
    pub fn new(compiled: &CompiledDataset, row_width: usize) -> Extractor {
        let paths = (0..compiled.model.files.len()).map(|i| compiled.file_path(i)).collect();
        Extractor {
            paths: Arc::new(paths),
            model: Arc::clone(&compiled.model),
            row_width,
            handles: Arc::new(HandlePool::new(HANDLE_CACHE_CAP)),
            decoded: Arc::new(Mutex::new(HashMap::new())),
            rowmajor: std::env::var_os("DV_ROWMAJOR").is_some(),
            unchecked: compiled.certificate() == Certificate::Safe
                && std::env::var_os("DV_CHECKED_DECODE").is_none(),
            cancel: CancelToken::new(),
        }
    }

    /// Force the decode path, overriding the certificate (ablation
    /// harnesses and differential tests).
    pub fn with_unchecked(mut self, on: bool) -> Extractor {
        self.unchecked = on;
        self
    }

    /// Attach a query's cancellation token; extraction checkpoints
    /// (one per byte run) report [`DvError::Cancelled`] once it trips.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Extractor {
        self.cancel = cancel;
        self
    }

    /// Share the server's cross-query open-file pool instead of this
    /// extractor's private one.
    pub fn with_shared_handles(mut self, shared: &SharedHandles) -> Extractor {
        self.handles = Arc::clone(&shared.pool);
        self
    }

    /// Whether the certificate-gated unchecked decode path is active.
    pub fn uses_unchecked_decode(&self) -> bool {
        self.unchecked
    }

    fn open(&self, file: usize) -> Result<Arc<File>> {
        if let Some(h) = self.handles.get(file) {
            return Ok(h);
        }
        let path = &self.paths[file];
        let handle =
            Arc::new(File::open(path).map_err(|e| DvError::io(path.display().to_string(), e))?);
        Ok(self.handles.insert(file, handle))
    }

    /// Read `buf.len()` bytes of `file` starting at `offset` (the
    /// I/O scheduler's single entry point to the filesystem).
    pub fn read_file_at(&self, file: usize, offset: u64, buf: &mut [u8]) -> Result<()> {
        let handle = self.open(file)?;
        read_exact_at(&handle, buf, offset, &self.paths[file])
    }

    /// The file's current `(len, mtime_nanos)` generation, statted by
    /// path so a replaced file is observed even while an old handle is
    /// pooled.
    pub fn file_generation(&self, file: usize) -> Result<FileGen> {
        let path = &self.paths[file];
        let meta =
            std::fs::metadata(path).map_err(|e| DvError::io(path.display().to_string(), e))?;
        let mtime_nanos = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        Ok(FileGen { len: meta.len(), mtime_nanos })
    }

    /// Drop the pooled handle for `file` (called when its on-disk
    /// generation changed: the handle may point at a replaced inode).
    pub fn invalidate_handle(&self, file: usize) {
        self.handles.remove(file);
    }

    /// Storage codec of `file`.
    pub fn codec(&self, file: usize) -> CodecKind {
        self.model.files[file].codec
    }

    /// Read the whole physical file and decode it to its logical
    /// fixed-stride image (unmemoized — the scheduled path's warmth
    /// is the segment cache, and warm reads must not decode at all).
    pub fn decode_physical_file(&self, file: usize) -> Result<Arc<Vec<u8>>> {
        let len = self.file_generation(file)?.len;
        let mut physical = vec![0u8; len as usize];
        self.read_file_at(file, 0, &mut physical)?;
        let f = &self.model.files[file];
        let logical = codec::decode_physical(f.codec, f, &self.model.attr_types, &physical)?;
        Ok(Arc::new(logical))
    }

    /// Decoded logical image of a non-affine `file`, memoized by
    /// on-disk generation (direct read path only).
    fn logical_file(&self, file: usize) -> Result<Arc<Vec<u8>>> {
        let generation = self.file_generation(file)?;
        if let Some((g, data)) = self.decoded.lock().unwrap().get(&file) {
            if *g == generation {
                return Ok(Arc::clone(data));
            }
            self.invalidate_handle(file);
        }
        let data = self.decode_physical_file(file)?;
        self.decoded.lock().unwrap().insert(file, (generation, Arc::clone(&data)));
        Ok(data)
    }

    /// Copy `len` logical bytes at `offset` of a non-affine file out
    /// of its decoded image.
    fn read_decoded(&self, file: usize, offset: u64, buf: &mut [u8]) -> Result<()> {
        let whole = self.logical_file(file)?;
        let lo = offset as usize;
        let src = lo.checked_add(buf.len()).and_then(|hi| whole.get(lo..hi)).ok_or_else(|| {
            DvError::Runtime(format!(
                "{}: decoded logical image ({} bytes) is shorter than the \
                     descriptor layout requires (run at offset {offset}, {} bytes)",
                self.paths[file].display(),
                whole.len(),
                buf.len()
            ))
        })?;
        buf.copy_from_slice(src);
        Ok(())
    }

    /// Read every entry run of `afc` into the shared scratch buffer
    /// (one allocation reused across entries and calls) and return
    /// per-entry slices.
    fn read_runs<'s>(&self, afc: &Afc, scratch: &'s mut ExtractScratch) -> Result<Vec<&'s [u8]>> {
        scratch.spans.clear();
        let mut total = 0usize;
        for e in &afc.entries {
            let len = (afc.num_rows * e.stride) as usize;
            scratch.spans.push((total, total + len));
            total += len;
        }
        if scratch.data.len() < total {
            scratch.data.resize(total, 0);
        }
        for (e, &(a, b)) in afc.entries.iter().zip(scratch.spans.iter()) {
            self.cancel.check()?;
            if self.codec(e.file).is_affine() {
                let handle = self.open(e.file)?;
                read_exact_at(&handle, &mut scratch.data[a..b], e.offset, &self.paths[e.file])?;
            } else {
                self.read_decoded(e.file, e.offset, &mut scratch.data[a..b])?;
            }
        }
        Ok(scratch.spans.iter().map(|&(a, b)| &scratch.data[a..b]).collect())
    }

    /// Per-entry slices of `afc` out of a fetched group's coalesced
    /// segments (no copies, no syscalls).
    fn fetched_runs<'g>(&self, afc: &Afc, group: &'g FetchedGroup) -> Result<Vec<&'g [u8]>> {
        afc.entries
            .iter()
            .map(|e| {
                let len = afc.num_rows * e.stride;
                group.slice(e.file, e.offset, len).ok_or_else(|| missed_run(e.file, e.offset, len))
            })
            .collect()
    }

    /// Read and decode one AFC into rows, appending to `block`.
    pub fn extract_into(&self, afc: &Afc, block: &mut RowBlock) -> Result<()> {
        let mut scratch = ExtractScratch::default();
        self.extract_into_with(afc, block, &mut scratch)
    }

    /// Like [`Extractor::extract_into`], reusing `scratch` read
    /// buffers across calls (the hot path used by node workers).
    pub fn extract_into_with(
        &self,
        afc: &Afc,
        block: &mut RowBlock,
        scratch: &mut ExtractScratch,
    ) -> Result<()> {
        let bufs = self.read_runs(afc, scratch)?;

        let n = afc.num_rows as usize;
        let start = block.rows.len();
        block.rows.reserve(n);
        let placeholder = Value::Char(0);
        for _ in 0..n {
            block.rows.push(vec![placeholder; self.row_width]);
        }
        let rows = &mut block.rows[start..];

        if self.rowmajor {
            // Experimental row-major decode path (perf comparison).
            let strides: Vec<usize> = afc.entries.iter().map(|e| e.stride as usize).collect();
            for (r, row) in rows.iter_mut().enumerate() {
                for f in &afc.fields {
                    let at = r * strides[f.entry] + f.byte_off;
                    row[f.working_pos] = Value::decode(f.dtype, &bufs[f.entry][at..]);
                }
            }
            for (pos, imp) in &afc.implicits {
                match imp {
                    ImplicitValue::Const(v) => {
                        for row in rows.iter_mut() {
                            row[*pos] = *v;
                        }
                    }
                    ImplicitValue::Affine { start, step, dtype } => {
                        for (r, row) in rows.iter_mut().enumerate() {
                            row[*pos] = Value::from_i64(*dtype, start + r as i64 * step);
                        }
                    }
                }
            }
            return Ok(());
        }

        // Column-major, type-specialized decode: the dtype match and
        // entry lookups are hoisted out of the per-row loop.
        for f in &afc.fields {
            let stride = afc.entries[f.entry].stride as usize;
            let buf = bufs[f.entry];
            let pos = f.working_pos;
            let off = f.byte_off;
            macro_rules! fill {
                ($ctor:path, $ty:ty, $size:expr) => {{
                    for (r, row) in rows.iter_mut().enumerate() {
                        let at = r * stride + off;
                        row[pos] =
                            $ctor(<$ty>::from_le_bytes(buf[at..at + $size].try_into().unwrap()));
                    }
                }};
            }
            match f.dtype {
                dv_types::DataType::Char => {
                    for (r, row) in rows.iter_mut().enumerate() {
                        row[pos] = Value::Char(buf[r * stride + off]);
                    }
                }
                dv_types::DataType::Short => fill!(Value::Short, i16, 2),
                dv_types::DataType::Int => fill!(Value::Int, i32, 4),
                dv_types::DataType::Long => fill!(Value::Long, i64, 8),
                dv_types::DataType::Float => fill!(Value::Float, f32, 4),
                dv_types::DataType::Double => fill!(Value::Double, f64, 8),
            }
        }
        for (pos, imp) in &afc.implicits {
            match imp {
                ImplicitValue::Const(v) => {
                    for row in rows.iter_mut() {
                        row[*pos] = *v;
                    }
                }
                ImplicitValue::Affine { start, step, dtype } => {
                    for (r, row) in rows.iter_mut().enumerate() {
                        row[*pos] = Value::from_i64(*dtype, start + r as i64 * step);
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience: extract a batch of AFCs into a fresh block.
    pub fn extract_all(&self, afcs: &[Afc], source_node: usize) -> Result<RowBlock> {
        let total: u64 = afcs.iter().map(|a| a.num_rows).sum();
        let mut block = RowBlock::with_capacity(source_node, total as usize);
        let mut scratch = ExtractScratch::default();
        for afc in afcs {
            self.extract_into_with(afc, &mut block, &mut scratch)?;
        }
        Ok(block)
    }

    /// Read and decode one AFC straight into typed columns — the
    /// columnar fallback path (direct per-entry reads into the shared
    /// scratch buffer).
    pub fn extract_columns_with(
        &self,
        afc: &Afc,
        block: &mut ColumnBlock,
        scratch: &mut ExtractScratch,
    ) -> Result<()> {
        let bufs = self.read_runs(afc, scratch)?;
        self.decode_columns(afc, block, &bufs)
    }

    /// Decode one AFC into typed columns out of an I/O scheduler's
    /// fetched group — the columnar default path. Runs are sliced out
    /// of the coalesced segments without copying.
    pub fn extract_columns_fetched(
        &self,
        afc: &Afc,
        block: &mut ColumnBlock,
        group: &FetchedGroup,
    ) -> Result<()> {
        let bufs = self.fetched_runs(afc, group)?;
        self.decode_columns(afc, block, &bufs)
    }

    /// The columnar decode kernel, shared by the direct-read and
    /// scheduled paths. Each scheduled field runs one tight
    /// strided-copy loop from its run's bytes into its native `Vec`
    /// (no per-row `Vec<Value>` allocation, no placeholder pre-fill);
    /// implicit attributes append lazy generator runs instead of
    /// materializing anything.
    fn decode_columns(&self, afc: &Afc, block: &mut ColumnBlock, bufs: &[&[u8]]) -> Result<()> {
        debug_assert_eq!(block.columns.len(), self.row_width);
        self.cancel.check()?;
        if self.unchecked {
            return self.decode_columns_unchecked(afc, block, bufs);
        }
        let n = afc.num_rows as usize;
        for f in &afc.fields {
            let stride = afc.entries[f.entry].stride as usize;
            let buf = bufs[f.entry];
            let off = f.byte_off;
            let col = block.columns[f.working_pos].append_data();
            macro_rules! fill {
                ($variant:ident, $ty:ty, $size:expr) => {{
                    let ColumnData::$variant(v) = col else {
                        return Err(DvError::Runtime(format!(
                            "column {} type mismatch decoding {:?}",
                            f.working_pos, f.dtype
                        )));
                    };
                    v.reserve(n);
                    for r in 0..n {
                        let at = r * stride + off;
                        v.push(<$ty>::from_le_bytes(buf[at..at + $size].try_into().unwrap()));
                    }
                }};
            }
            match f.dtype {
                dv_types::DataType::Char => {
                    let ColumnData::Char(v) = col else {
                        return Err(DvError::Runtime(format!(
                            "column {} type mismatch decoding Char",
                            f.working_pos
                        )));
                    };
                    v.reserve(n);
                    for r in 0..n {
                        v.push(buf[r * stride + off]);
                    }
                }
                dv_types::DataType::Short => fill!(Short, i16, 2),
                dv_types::DataType::Int => fill!(Int, i32, 4),
                dv_types::DataType::Long => fill!(Long, i64, 8),
                dv_types::DataType::Float => fill!(Float, f32, 4),
                dv_types::DataType::Double => fill!(Double, f64, 8),
            }
        }
        Self::append_implicits(afc, block, n);
        Ok(())
    }

    /// The certificate-gated decode kernel: one amortized length guard
    /// per (field, run) replaces the per-row slice bounds checks, and
    /// raw-pointer appends replace the per-push capacity checks.
    ///
    /// A `Safe` certificate proves the descriptor's extents are
    /// consistent — it says nothing about how many bytes a particular
    /// run actually holds, so the up-front guard below is what keeps
    /// this path memory-safe even against a lying filesystem.
    fn decode_columns_unchecked(
        &self,
        afc: &Afc,
        block: &mut ColumnBlock,
        bufs: &[&[u8]],
    ) -> Result<()> {
        let n = afc.num_rows as usize;
        for f in &afc.fields {
            let stride = afc.entries[f.entry].stride as usize;
            let buf = bufs[f.entry];
            let off = f.byte_off;
            let col = block.columns[f.working_pos].append_data();
            macro_rules! fill {
                ($variant:ident, $ty:ty, $size:expr) => {{
                    let ColumnData::$variant(v) = col else {
                        return Err(DvError::Runtime(format!(
                            "column {} type mismatch decoding {:?}",
                            f.working_pos, f.dtype
                        )));
                    };
                    if n > 0 {
                        let need = (n - 1) * stride + off + $size;
                        if buf.len() < need {
                            return Err(DvError::Runtime(format!(
                                "run of {} bytes too short for {n} rows (need {need})",
                                buf.len()
                            )));
                        }
                        v.reserve(n);
                        let base = v.len();
                        // SAFETY: the guard above bounds every strided
                        // read (`r < n` ⇒ `r*stride + off + $size <=
                        // need <= buf.len()`), and `reserve(n)` backs
                        // the writes finalized by `set_len`.
                        unsafe {
                            let src = buf.as_ptr();
                            let dst = v.as_mut_ptr().add(base);
                            for r in 0..n {
                                let p = src.add(r * stride + off) as *const [u8; $size];
                                dst.add(r).write(<$ty>::from_le_bytes(std::ptr::read_unaligned(p)));
                            }
                            v.set_len(base + n);
                        }
                    }
                }};
            }
            match f.dtype {
                dv_types::DataType::Char => fill!(Char, u8, 1),
                dv_types::DataType::Short => fill!(Short, i16, 2),
                dv_types::DataType::Int => fill!(Int, i32, 4),
                dv_types::DataType::Long => fill!(Long, i64, 8),
                dv_types::DataType::Float => fill!(Float, f32, 4),
                dv_types::DataType::Double => fill!(Double, f64, 8),
            }
        }
        Self::append_implicits(afc, block, n);
        Ok(())
    }

    /// Append implicit-attribute generator runs and advance the block
    /// (shared tail of both decode kernels).
    fn append_implicits(afc: &Afc, block: &mut ColumnBlock, n: usize) {
        for (pos, imp) in &afc.implicits {
            let gen = match imp {
                ImplicitValue::Const(v) => ColumnGen::Const(*v),
                ImplicitValue::Affine { start, step, .. } => {
                    ColumnGen::Affine { start: *start, step: *step }
                }
            };
            block.columns[*pos].push_run(n, gen);
        }
        block.advance_rows(n);
    }

    /// Convenience: extract a batch of AFCs into a fresh columnar
    /// block (used by tests and the ablation harness).
    pub fn extract_all_columns(
        &self,
        afcs: &[Afc],
        source_node: usize,
        dtypes: &[dv_types::DataType],
    ) -> Result<ColumnBlock> {
        let mut block = ColumnBlock::with_dtypes(source_node, dtypes);
        let mut scratch = ExtractScratch::default();
        for afc in afcs {
            self.extract_columns_with(afc, &mut block, &mut scratch)?;
        }
        Ok(block)
    }
}

/// Reusable read state for the direct-read extraction path: one data
/// buffer shared across all AFC entries plus the per-entry spans into
/// it.
#[derive(Default)]
pub struct ExtractScratch {
    data: Vec<u8>,
    spans: Vec<(usize, usize)>,
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64, path: &Path) -> Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset).map_err(|e| DvError::io(path.display().to_string(), e))
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64, path: &Path) -> Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))
        .and_then(|_| f.read_exact(buf))
        .map_err(|e| DvError::io(path.display().to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{group_afcs, IoOptions, IoScheduler, IoStats, SegmentCache};
    use dv_sql::{bind, parse, UdfRegistry};
    use dv_types::Row;
    use std::io::Write;
    use std::path::Path;

    const DESC: &str = r#"
[IPARS]
REL = short int
TIME = int
X = float
SOIL = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = n0/d

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET coords DATASET vars }
  DATASET "coords" {
    DATASPACE { LOOP GRID 1:4:1 { X } }
    DATA { DIR[0]/COORDS }
  }
  DATASET "vars" {
    DATASPACE {
      LOOP TIME 1:3:1 {
        LOOP GRID 1:4:1 { SOIL }
      }
    }
    DATA { DIR[0]/DATA$REL REL = 0:1:1 }
  }
}
"#;

    /// Write the little dataset DESC describes and return its base dir.
    fn write_dataset(base: &Path) {
        let dir = base.join("n0/d");
        std::fs::create_dir_all(&dir).unwrap();
        // COORDS: X = 10.0, 20.0, 30.0, 40.0.
        let mut f = std::fs::File::create(dir.join("COORDS")).unwrap();
        for g in 1..=4 {
            f.write_all(&((g as f32) * 10.0).to_le_bytes()).unwrap();
        }
        // DATA{rel}: SOIL = rel*1000 + time*10 + grid, per time, grid.
        for rel in 0..2 {
            let mut f = std::fs::File::create(dir.join(format!("DATA{rel}"))).unwrap();
            for t in 1..=3 {
                for g in 1..=4 {
                    let v = (rel * 1000 + t * 10 + g) as f32;
                    f.write_all(&v.to_le_bytes()).unwrap();
                }
            }
        }
    }

    fn run(sql: &str, base: &Path) -> Vec<Row> {
        let compiled = crate::plan::compile_from_text(DESC, base).unwrap();
        let q = parse(sql).unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        let mut rows = Vec::new();
        for np in &plan.node_plans {
            let block = ex.extract_all(&np.afcs, np.node).unwrap();
            rows.extend(block.rows);
        }
        rows.sort();
        rows
    }

    fn tmpbase(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dv-extract-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// DESC with `CODEC csv` on COORDS and `CODEC zstd` on DATA$REL.
    fn codec_desc() -> String {
        DESC.replace("DIR[0]/COORDS", "DIR[0]/COORDS CODEC csv")
            .replace("REL = 0:1:1", "REL = 0:1:1 CODEC zstd")
    }

    /// Re-encode every non-affine file of `desc` in place: the binary
    /// bytes written by `write_dataset` become the logical image.
    fn transcode_dataset(desc: &str, base: &Path) {
        let compiled = crate::plan::compile_from_text(desc, base).unwrap();
        for f in compiled.model.files.iter().filter(|f| !f.codec.is_affine()) {
            let path = compiled.file_path(f.id);
            let logical = std::fs::read(&path).unwrap();
            let physical =
                codec::encode_logical(f.codec, f, &compiled.model.attr_types, &logical).unwrap();
            std::fs::write(&path, physical).unwrap();
        }
    }

    fn run_desc(desc: &str, sql: &str, base: &Path) -> Vec<Row> {
        let compiled = crate::plan::compile_from_text(desc, base).unwrap();
        let q = parse(sql).unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        let mut rows = Vec::new();
        for np in &plan.node_plans {
            let block = ex.extract_all(&np.afcs, np.node).unwrap();
            rows.extend(block.rows);
        }
        rows.sort();
        rows
    }

    #[test]
    fn mixed_codec_table_matches_binary() {
        // One virtual table spanning a CSV file and zstd files must
        // return bit-identical rows to the all-binary layout.
        let bin = tmpbase("codec-bin");
        write_dataset(&bin);
        let mixed = tmpbase("codec-mixed");
        write_dataset(&mixed);
        let desc = codec_desc();
        transcode_dataset(&desc, &mixed);
        // The transcode really changed the bytes on disk.
        assert_ne!(
            std::fs::read(bin.join("n0/d/COORDS")).unwrap(),
            std::fs::read(mixed.join("n0/d/COORDS")).unwrap()
        );
        for sql in [
            "SELECT * FROM IparsData",
            "SELECT SOIL FROM IparsData WHERE REL = 0 AND TIME = 1",
            "SELECT X FROM IparsData WHERE TIME = 2",
        ] {
            assert_eq!(run(sql, &bin), run_desc(&desc, sql, &mixed), "{sql}");
        }
    }

    #[test]
    fn scheduled_codec_extraction_matches_direct() {
        let base = tmpbase("codec-sched");
        write_dataset(&base);
        let desc = codec_desc();
        transcode_dataset(&desc, &base);
        let compiled = crate::plan::compile_from_text(&desc, &base).unwrap();
        let q = parse("SELECT * FROM IparsData").unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        let opts =
            IoOptions { coalesce_gap: 64 * 1024, cache_bytes: 1 << 20, ..IoOptions::default() };
        let cache = Some(Arc::new(SegmentCache::new(1 << 20)));
        let stats = Arc::new(IoStats::default());
        let mut decode_calls_cold = 0;
        for round in 0..2 {
            for np in &plan.node_plans {
                let sched =
                    IoScheduler::new(ex.clone(), opts.clone(), cache.clone(), Arc::clone(&stats));
                let direct =
                    ex.extract_all_columns(&np.afcs, np.node, &plan.working.dtypes).unwrap();
                let mut via = ColumnBlock::with_dtypes(np.node, &plan.working.dtypes);
                for g in group_afcs(&np.afcs, opts.group_bytes) {
                    let fetched = sched.fetch(&np.afcs[g.clone()]).unwrap();
                    for afc in &np.afcs[g] {
                        ex.extract_columns_fetched(afc, &mut via, &fetched).unwrap();
                    }
                }
                assert_eq!(via.len(), direct.len());
                for i in 0..direct.len() {
                    let a: Row = direct.columns.iter().map(|c| c.value_at(i)).collect();
                    let b: Row = via.columns.iter().map(|c| c.value_at(i)).collect();
                    assert_eq!(a, b, "row {i} round {round}");
                }
            }
            let snap = stats.snapshot();
            if round == 0 {
                decode_calls_cold = snap.decode_calls;
                assert!(snap.decode_calls > 0, "cold fetch must decode");
                assert!(snap.decode_bytes > 0);
            } else {
                // Warm reads come out of the segment cache as already
                // decompressed bytes: zero re-decompression.
                assert_eq!(snap.decode_calls, decode_calls_cold, "warm fetch must not decode");
                assert!(snap.cache_hit_bytes > 0);
            }
        }
    }

    #[test]
    fn cache_budget_counts_decompressed_bytes() {
        // Regression: the cache must charge the *stored* (decompressed)
        // length against its byte budget. A high-compression-ratio zstd
        // file whose physical size fits the budget but whose logical
        // image does not must not be retained.
        let base = tmpbase("codec-budget");
        let dir = base.join("n0/d");
        std::fs::create_dir_all(&dir).unwrap();
        let desc = r#"
[ZERO]
GRID = int
X = float

[ZeroData]
DatasetDescription = ZERO
DIR[0] = n0/d

DATASET "ZeroData" {
  DATATYPE { ZERO }
  DATAINDEX { GRID }
  DATA { DATASET zero }
  DATASET "zero" {
    DATASPACE { LOOP GRID 1:8192:1 { X } }
    DATA { DIR[0]/Z CODEC zstd }
  }
}
"#;
        // 8192 zero floats: 32 KiB logical, RLE-compressed to a frame
        // far below the 1 KiB cache budget.
        let compiled = crate::plan::compile_from_text(desc, &base).unwrap();
        let f = &compiled.model.files[0];
        let logical = vec![0u8; 8192 * 4];
        let physical =
            codec::encode_logical(f.codec, f, &compiled.model.attr_types, &logical).unwrap();
        assert!(physical.len() < 256, "RLE frame should be tiny, got {}", physical.len());
        std::fs::write(dir.join("Z"), &physical).unwrap();

        let q = parse("SELECT X FROM ZeroData").unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        let budget = 1024u64;
        let opts = IoOptions { cache_bytes: budget, ..IoOptions::default() };
        let cache = Arc::new(SegmentCache::new(budget));
        let stats = Arc::new(IoStats::default());
        let np = &plan.node_plans[0];
        for _ in 0..2 {
            let sched = IoScheduler::new(
                ex.clone(),
                opts.clone(),
                Some(Arc::clone(&cache)),
                Arc::clone(&stats),
            );
            for g in group_afcs(&np.afcs, opts.group_bytes) {
                sched.fetch(&np.afcs[g]).unwrap();
            }
        }
        let snap = stats.snapshot();
        assert!(
            cache.used_bytes() <= budget,
            "cache holds {} bytes over a {} byte budget",
            cache.used_bytes(),
            budget
        );
        assert_eq!(snap.cache_hit_bytes, 0, "oversized decompressed segment must not be served");
        assert_eq!(snap.decode_calls, 2, "both fetches re-decode when the entry cannot fit");
        assert_eq!(snap.decode_bytes, 2 * 8192 * 4);
    }

    #[test]
    fn truncated_nonaffine_file_is_clean_error() {
        // The descriptor promises 12 logical rows per DATA file; a CSV
        // file that decodes shorter must surface DvError, not panic.
        let base = tmpbase("codec-short");
        write_dataset(&base);
        let desc = codec_desc();
        transcode_dataset(&desc, &base);
        let coords = base.join("n0/d/COORDS");
        let text = std::fs::read_to_string(&coords).unwrap();
        let keep: Vec<&str> = text.lines().take(2).collect();
        std::fs::write(&coords, format!("{}\n", keep.join("\n"))).unwrap();
        let compiled = crate::plan::compile_from_text(&desc, &base).unwrap();
        let q = parse("SELECT X FROM IparsData").unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        let err = plan
            .node_plans
            .iter()
            .map(|np| ex.extract_all(&np.afcs, np.node))
            .collect::<Result<Vec<_>>>()
            .unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn full_scan_materializes_all_rows() {
        let base = tmpbase("full");
        write_dataset(&base);
        let rows = run("SELECT * FROM IparsData", &base);
        // 2 REL × 3 TIME × 4 GRID.
        assert_eq!(rows.len(), 24);
        // Row layout: REL, TIME, X, SOIL (working = all four).
        let first = &rows[0];
        assert_eq!(first[0], Value::Short(0));
        assert_eq!(first[1], Value::Int(1));
        assert_eq!(first[2], Value::Float(10.0));
        assert_eq!(first[3], Value::Float(11.0));
        let last = &rows[23];
        assert_eq!(last[0], Value::Short(1));
        assert_eq!(last[1], Value::Int(3));
        assert_eq!(last[2], Value::Float(40.0));
        assert_eq!(last[3], Value::Float(1034.0));
    }

    #[test]
    fn range_query_extracts_subset() {
        let base = tmpbase("range");
        write_dataset(&base);
        let rows = run("SELECT * FROM IparsData WHERE TIME = 2 AND REL = 1", &base);
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Value::Short(1));
            assert_eq!(row[1], Value::Int(2));
            assert_eq!(row[2], Value::Float((i as f32 + 1.0) * 10.0));
            assert_eq!(row[3], Value::Float(1021.0 + i as f32));
        }
    }

    #[test]
    fn projection_only_working_attrs() {
        let base = tmpbase("proj");
        write_dataset(&base);
        let rows = run("SELECT SOIL FROM IparsData WHERE REL = 0 AND TIME = 1", &base);
        // Working set is {REL, TIME, SOIL}: the predicate reads REL and
        // TIME even though pruning already captured them.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn columnar_extraction_matches_rows() {
        let base = tmpbase("columnar");
        write_dataset(&base);
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        let sqls = [
            "SELECT * FROM IparsData",
            "SELECT SOIL FROM IparsData WHERE REL = 0 AND TIME = 1",
            "SELECT X FROM IparsData WHERE TIME = 2",
        ];
        for sql in sqls {
            let q = parse(sql).unwrap();
            let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
            let plan = compiled.plan_query(&b).unwrap();
            let ex = Extractor::new(&compiled, plan.working.attrs.len());
            for np in &plan.node_plans {
                let rows = ex.extract_all(&np.afcs, np.node).unwrap();
                let cols = ex.extract_all_columns(&np.afcs, np.node, &plan.working.dtypes).unwrap();
                assert_eq!(cols.len(), rows.len(), "{sql}");
                let rebuilt: Vec<Row> = (0..cols.len())
                    .map(|i| cols.columns.iter().map(|c| c.value_at(i)).collect())
                    .collect();
                assert_eq!(rebuilt, rows.rows, "{sql}");
            }
        }
    }

    #[test]
    fn scheduled_extraction_matches_direct_reads() {
        // Every knob combination of the I/O scheduler decodes the same
        // columns as the direct per-entry path, with fewer syscalls.
        let base = tmpbase("sched");
        write_dataset(&base);
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        let q = parse("SELECT * FROM IparsData").unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        for (gap, cache_bytes) in [(0u64, 0u64), (64 * 1024, 0), (64 * 1024, 1 << 20)] {
            let opts = IoOptions { coalesce_gap: gap, cache_bytes, ..IoOptions::default() };
            let cache = Some(Arc::new(SegmentCache::new(cache_bytes.max(1))));
            let stats = Arc::new(IoStats::default());
            for np in &plan.node_plans {
                let sched =
                    IoScheduler::new(ex.clone(), opts.clone(), cache.clone(), Arc::clone(&stats));
                let direct =
                    ex.extract_all_columns(&np.afcs, np.node, &plan.working.dtypes).unwrap();
                let mut via_sched = ColumnBlock::with_dtypes(np.node, &plan.working.dtypes);
                for g in group_afcs(&np.afcs, opts.group_bytes) {
                    let fetched = sched.fetch(&np.afcs[g.clone()]).unwrap();
                    for afc in &np.afcs[g] {
                        ex.extract_columns_fetched(afc, &mut via_sched, &fetched).unwrap();
                    }
                }
                assert_eq!(via_sched.len(), direct.len());
                for i in 0..direct.len() {
                    let a: Row = direct.columns.iter().map(|c| c.value_at(i)).collect();
                    let b: Row = via_sched.columns.iter().map(|c| c.value_at(i)).collect();
                    assert_eq!(a, b, "row {i} gap={gap} cache={cache_bytes}");
                }
            }
            let snap = stats.snapshot();
            assert!(snap.read_syscalls > 0);
            assert!(snap.runs_scheduled >= snap.read_syscalls);
        }
    }

    #[test]
    fn unchecked_decode_matches_checked() {
        let base = tmpbase("unchecked");
        write_dataset(&base);
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        assert_eq!(compiled.certificate(), crate::plan::Certificate::Unverified);
        let sqls = [
            "SELECT * FROM IparsData",
            "SELECT SOIL FROM IparsData WHERE REL = 0 AND TIME = 1",
            "SELECT X FROM IparsData WHERE TIME = 2",
        ];
        for sql in sqls {
            let q = parse(sql).unwrap();
            let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
            let plan = compiled.plan_query(&b).unwrap();
            let checked = Extractor::new(&compiled, plan.working.attrs.len());
            let unchecked = checked.clone().with_unchecked(true);
            assert!(!checked.uses_unchecked_decode());
            assert!(unchecked.uses_unchecked_decode());
            for np in &plan.node_plans {
                let a = checked.extract_all_columns(&np.afcs, np.node, &plan.working.dtypes);
                let b = unchecked.extract_all_columns(&np.afcs, np.node, &plan.working.dtypes);
                let (a, b) = (a.unwrap(), b.unwrap());
                assert_eq!(a.len(), b.len(), "{sql}");
                for i in 0..a.len() {
                    let ra: Row = a.columns.iter().map(|c| c.value_at(i)).collect();
                    let rb: Row = b.columns.iter().map(|c| c.value_at(i)).collect();
                    assert_eq!(ra, rb, "{sql} row {i}");
                }
            }
        }
    }

    #[test]
    fn unchecked_decode_guards_short_runs() {
        // Even with the per-row checks gone, a run shorter than the
        // AFC demands must error — never read out of bounds.
        let base = tmpbase("unchecked-short");
        write_dataset(&base);
        let full = std::fs::read(base.join("n0/d/DATA0")).unwrap();
        std::fs::write(base.join("n0/d/DATA0"), &full[..full.len() / 2]).unwrap();
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        let q = parse("SELECT * FROM IparsData WHERE REL = 0").unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len()).with_unchecked(true);
        let result: Result<Vec<ColumnBlock>> = plan
            .node_plans
            .iter()
            .map(|np| ex.extract_all_columns(&np.afcs, np.node, &plan.working.dtypes))
            .collect();
        assert!(result.is_err());
    }

    #[test]
    fn certificate_enables_unchecked_path() {
        let base = tmpbase("cert");
        write_dataset(&base);
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        compiled.set_certificate(crate::plan::Certificate::Safe);
        let ex = Extractor::new(&compiled, 4);
        assert!(ex.uses_unchecked_decode());
        compiled.set_certificate(crate::plan::Certificate::Refuted);
        let ex = Extractor::new(&compiled, 4);
        assert!(!ex.uses_unchecked_decode());
    }

    #[test]
    fn handle_pool_is_bounded() {
        let pool = HandlePool::new(4);
        let base = tmpbase("pool");
        write_dataset(&base);
        let f = Arc::new(File::open(base.join("n0/d/COORDS")).unwrap());
        for i in 0..100 {
            pool.insert(i, Arc::clone(&f));
        }
        assert_eq!(pool.len(), 4, "pool must evict down to capacity");
        // Recently used entries survive eviction.
        assert!(pool.get(99).is_some());
        pool.insert(1000, Arc::clone(&f));
        assert!(pool.get(99).is_some(), "just-touched handle kept");
        pool.remove(99);
        assert!(pool.get(99).is_none());
    }

    #[test]
    fn missing_file_is_io_error() {
        let base = tmpbase("missing");
        write_dataset(&base);
        std::fs::remove_file(base.join("n0/d/DATA1")).unwrap();
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        let q = parse("SELECT * FROM IparsData").unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        let mut failed = false;
        for np in &plan.node_plans {
            if ex.extract_all(&np.afcs, np.node).is_err() {
                failed = true;
            }
        }
        assert!(failed);
    }

    #[test]
    fn short_file_is_io_error() {
        // A file shorter than the descriptor promises must surface as
        // an I/O error, not silent zero rows.
        let base = tmpbase("short");
        write_dataset(&base);
        let full = std::fs::read(base.join("n0/d/DATA0")).unwrap();
        std::fs::write(base.join("n0/d/DATA0"), &full[..full.len() / 2]).unwrap();
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        let q = parse("SELECT * FROM IparsData WHERE REL = 0").unwrap();
        let b = bind(&q, &compiled.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let plan = compiled.plan_query(&b).unwrap();
        let ex = Extractor::new(&compiled, plan.working.attrs.len());
        let result: Result<Vec<RowBlock>> =
            plan.node_plans.iter().map(|np| ex.extract_all(&np.afcs, np.node)).collect();
        assert!(result.is_err());
    }

    #[test]
    fn same_second_rewrite_changes_generation() {
        // Regression: generations keyed on whole-second mtimes let a
        // same-length file rewritten twice within one second keep its
        // generation, so the segment cache served the first rewrite's
        // bytes. Nanosecond mtimes must observe the change well inside
        // the second.
        let base = tmpbase("gen");
        write_dataset(&base);
        let compiled = crate::plan::compile_from_text(DESC, &base).unwrap();
        let ex = Extractor::new(&compiled, 4);
        let fid = compiled.model.files.iter().find(|f| f.rel_path.ends_with("DATA0")).unwrap().id;
        let path = compiled.file_path(fid);
        let bytes = std::fs::read(&path).unwrap();

        // First rewrite of the second.
        std::fs::write(&path, &bytes).unwrap();
        let g1 = ex.file_generation(fid).unwrap();
        let cache = SegmentCache::new(1 << 20);
        assert!(!cache.observe_generation(fid, g1));
        let read = crate::io::CoalescedRead { file: fid, start: 0, len: 8 };
        cache.insert(&read, g1, Arc::new(bytes[..8].to_vec()));
        assert!(cache.get(&read, g1).is_some());

        // Second rewrite, same length, still within the same second
        // (bounded retry: filesystem timestamps tick coarsely, but far
        // finer than a second).
        let start = std::time::Instant::now();
        let mut g2 = g1;
        while g2 == g1 && start.elapsed() < std::time::Duration::from_millis(900) {
            std::fs::write(&path, &bytes).unwrap();
            g2 = ex.file_generation(fid).unwrap();
            if g2 == g1 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        assert_ne!(g1, g2, "sub-second rewrite must change the file generation");
        assert_eq!(g1.len, g2.len);
        assert!(cache.observe_generation(fid, g2), "new generation must purge the file");
        assert!(cache.get(&read, g2).is_none());
    }
}
