//! `Find_File_Groups` — the first phase of the paper's Figure 5
//! algorithm.
//!
//! 1. Match every file against the query: a file whose implicit
//!    extents cannot overlap the query's attribute ranges is dropped
//!    (`S` = survivors).
//! 2. Classify survivors by the set of *needed* attributes they store
//!    (`S_1..S_m`). Files storing nothing the query needs normally
//!    drop out; when *no* file stores a needed attribute (a purely
//!    implicit projection like `SELECT REL, TIME`), classification
//!    falls back to full stored-attribute sets so the table's
//!    cardinality is still produced.
//! 3. Enumerate combinations `{s_1..s_m}`, one file per class,
//!    discarding combinations whose implicit attributes are
//!    inconsistent. The enumeration is a DFS with partial-consistency
//!    pruning — semantically the paper's cartesian product + filter,
//!    without materializing the product.

use std::collections::HashMap;

use dv_descriptor::{DatasetModel, FileModel};
use dv_types::IntervalSet;

use crate::afc::WorkingSet;

/// Result of file matching + classification + combination.
pub type FileGroups<'a> = Vec<Vec<&'a FileModel>>;

/// Does the file survive the query's range constraints?
pub fn file_matches(file: &FileModel, ranges: &HashMap<String, IntervalSet>) -> bool {
    for (var, extent) in &file.extents {
        if let Some(set) = ranges.get(var) {
            let (lo, hi) = extent.hull();
            if !set.overlaps_closed(lo as f64, hi as f64) {
                return false;
            }
        }
    }
    true
}

/// Are two files consistent enough to contribute to the same rows?
/// (Shared implicit variables must overlap; exact alignment is checked
/// later at the segment level.) Also used by `dv-lint` to decide which
/// file pairs would group together at query time.
pub fn consistent(a: &FileModel, b: &FileModel) -> bool {
    for (var, ea) in &a.extents {
        if let Some(eb) = b.extents.get(var) {
            let (alo, ahi) = ea.hull();
            let (blo, bhi) = eb.hull();
            if alo > bhi || blo > ahi {
                return false;
            }
        }
    }
    true
}

/// Compute the file groups for one cluster node.
pub fn find_file_groups<'a>(
    model: &'a DatasetModel,
    node: usize,
    ranges: &HashMap<String, IntervalSet>,
    working: &WorkingSet,
) -> FileGroups<'a> {
    // Classify ALL files of the node first, then prune within each
    // class. The order matters: a class whose files are all pruned away
    // empties the cartesian product (e.g. `TIME >= 1000` eliminates
    // every data file, so the surviving COORDS files alone must yield
    // zero groups, not coordinate-only rows).
    let all_files: Vec<&FileModel> = model.files_on_node(node).collect();
    if all_files.is_empty() {
        return Vec::new();
    }

    // Classification key: the FULL set of stored attributes, exactly
    // as the paper specifies ("classify files in S by the set of
    // attributes they have"). Classifying only by *needed* attributes
    // would be wrong: a `SELECT X, Y, Z WHERE REL = 1` query still
    // needs the per-realization data files in the join — they supply
    // the REL/TIME implicit values and the table's cardinality, even
    // though none of their stored bytes are read (their field-less AFC
    // entries are dropped after alignment).
    let full_key = |f: &FileModel| -> Vec<String> {
        let mut key = f.stored_attrs.clone();
        key.sort();
        if key.is_empty() {
            // A file storing only auxiliary attributes still defines
            // cardinality; classify it by dataset name.
            key.push(format!("__dataset:{}", f.dataset));
        }
        key
    };
    let mut classes: Vec<(Vec<String>, Vec<&FileModel>)> = Vec::new();
    for f in &all_files {
        let key = full_key(f);
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, files)) => files.push(f),
            None => classes.push((key, vec![f])),
        }
    }
    let _ = working;
    if classes.is_empty() {
        return Vec::new();
    }

    // Prune within classes; an emptied class empties the product.
    for (_, files) in &mut classes {
        files.retain(|f| file_matches(f, ranges));
        if files.is_empty() {
            return Vec::new();
        }
    }

    // Smallest classes first: cheap pruning near the root of the DFS.
    classes.sort_by_key(|(_, files)| files.len());

    // Step 3: DFS over one-file-per-class combinations.
    let mut groups: FileGroups<'a> = Vec::new();
    let mut current: Vec<&FileModel> = Vec::new();
    dfs(&classes, 0, &mut current, &mut groups);
    groups
}

fn dfs<'a>(
    classes: &[(Vec<String>, Vec<&'a FileModel>)],
    depth: usize,
    current: &mut Vec<&'a FileModel>,
    out: &mut FileGroups<'a>,
) {
    if depth == classes.len() {
        out.push(current.clone());
        return;
    }
    for candidate in &classes[depth].1 {
        if current.iter().all(|chosen| consistent(chosen, candidate)) {
            current.push(candidate);
            dfs(classes, depth + 1, current, out);
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afc::WorkingSet;
    use dv_descriptor::compile;
    use dv_types::Interval;

    /// Four-directory Ipars, as in the paper's worked example (§4).
    const DESC: &str = r#"
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }
  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X Y Z }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }
  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { SOIL SGAS }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
"#;

    fn ranges(pairs: &[(&str, IntervalSet)]) -> HashMap<String, IntervalSet> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn paper_worked_example() {
        // Query: REL in {0, 1}, TIME in [1, 100]. The paper finds, per
        // k, groups {DIR[k]/COORDS, DIR[k]/DATA0} and
        // {DIR[k]/COORDS, DIR[k]/DATA1} — 8 groups over 4 nodes, i.e.
        // 2 groups on each node.
        let m = compile(DESC).unwrap();
        let working = WorkingSet::new(&m, (0..m.schema.len()).collect());
        let r = ranges(&[
            ("REL", IntervalSet::points(&[0.0, 1.0])),
            ("TIME", IntervalSet::single(Interval::closed(1.0, 100.0))),
        ]);
        for node in 0..4 {
            let groups = find_file_groups(&m, node, &r, &working);
            assert_eq!(groups.len(), 2, "node {node}");
            for g in &groups {
                assert_eq!(g.len(), 2);
                // One coords file + one data file, same directory.
                let coords = g.iter().find(|f| f.dataset == "ipars1").unwrap();
                let data = g.iter().find(|f| f.dataset == "ipars2").unwrap();
                assert_eq!(coords.env["DIRID"], data.env["DIRID"]);
                assert!(data.env["REL"] == 0 || data.env["REL"] == 1);
            }
        }
    }

    #[test]
    fn rel_pruning_drops_files() {
        let m = compile(DESC).unwrap();
        let working = WorkingSet::new(&m, (0..m.schema.len()).collect());
        let r = ranges(&[("REL", IntervalSet::points(&[3.0]))]);
        let groups = find_file_groups(&m, 0, &r, &working);
        assert_eq!(groups.len(), 1);
        let data = groups[0].iter().find(|f| f.dataset == "ipars2").unwrap();
        assert_eq!(data.env["REL"], 3);
    }

    #[test]
    fn time_out_of_range_eliminates_everything() {
        let m = compile(DESC).unwrap();
        let working = WorkingSet::new(&m, (0..m.schema.len()).collect());
        let r = ranges(&[("TIME", IntervalSet::single(Interval::closed(1000.0, 1100.0)))]);
        let groups = find_file_groups(&m, 0, &r, &working);
        assert!(groups.is_empty());
    }

    #[test]
    fn projection_groups_keep_full_structure() {
        // SELECT SOIL-ish working set: groups still pair COORDS with
        // the data files (classification uses the full attribute sets;
        // projection push-down happens later, at the AFC-entry level).
        let m = compile(DESC).unwrap();
        let soil = m.schema.index_of("SOIL").unwrap();
        let working = WorkingSet::new(&m, vec![soil]);
        let groups = find_file_groups(&m, 0, &HashMap::new(), &working);
        assert_eq!(groups.len(), 4); // one per REL
        assert!(groups.iter().all(|g| g.len() == 2));
    }

    #[test]
    fn implicit_only_projection_falls_back_to_structure() {
        // SELECT REL, TIME: nothing needed is stored anywhere, yet the
        // groups must still produce the table's cardinality.
        let m = compile(DESC).unwrap();
        let rel = m.schema.index_of("REL").unwrap();
        let time = m.schema.index_of("TIME").unwrap();
        let working = WorkingSet::new(&m, vec![rel, time]);
        let groups = find_file_groups(&m, 0, &HashMap::new(), &working);
        // Full structure: coords × data per REL.
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.len() == 2));
    }

    #[test]
    fn cross_directory_combinations_rejected() {
        // Give one node two directories: consistency on GRID/DIRID
        // must keep same-directory pairs only.
        let desc = DESC
            .replace("DIR[1] = osu1/ipars", "DIR[1] = osu0/ipars2")
            .replace("DIR[2] = osu2/ipars", "DIR[2] = osu2x/ipars")
            .replace("DIR[3] = osu3/ipars", "DIR[3] = osu3x/ipars");
        let m = compile(&desc).unwrap();
        assert_eq!(m.node_count(), 3);
        let working = WorkingSet::new(&m, (0..m.schema.len()).collect());
        // Node 0 hosts DIR[0] and DIR[1]: 2 dirs × 4 RELs.
        let groups = find_file_groups(&m, 0, &HashMap::new(), &working);
        assert_eq!(groups.len(), 8);
        for g in &groups {
            let coords = g.iter().find(|f| f.dataset == "ipars1").unwrap();
            let data = g.iter().find(|f| f.dataset == "ipars2").unwrap();
            assert_eq!(coords.env["DIRID"], data.env["DIRID"]);
        }
    }

    #[test]
    fn file_matches_respects_extents() {
        let m = compile(DESC).unwrap();
        let data0 =
            m.files.iter().find(|f| f.rel_path == "ipars/DATA0" && f.env["DIRID"] == 0).unwrap();
        assert!(file_matches(data0, &ranges(&[("REL", IntervalSet::points(&[0.0]))])));
        assert!(!file_matches(data0, &ranges(&[("REL", IntervalSet::points(&[2.0]))])));
        assert!(file_matches(
            data0,
            &ranges(&[("TIME", IntervalSet::single(Interval::closed(499.0, 600.0)))])
        ));
        assert!(!file_matches(
            data0,
            &ranges(&[("TIME", IntervalSet::single(Interval::closed(501.0, 600.0)))])
        ));
    }
}
