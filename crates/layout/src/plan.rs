//! Two-phase plan compilation.
//!
//! **Phase 1** ([`CompiledDataset::compile`]) corresponds to the
//! paper's meta-data compilation: it runs once per descriptor, before
//! any query. All descriptor-text processing is already done
//! (`dv-descriptor`); this phase performs the remaining expensive,
//! query-independent work — loading `CHUNKED` index files and building
//! R-trees over chunk MBRs — and freezes everything the generated
//! index/extractor functions need.
//!
//! **Phase 2** ([`CompiledDataset::plan_query`]) runs per query: range
//! analysis, file matching, group finding and AFC alignment. Its
//! output, a [`QueryPlan`], is a pure data structure the runtime
//! executes without further meta-data reasoning.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use dv_descriptor::{DatasetModel, ResolvedItem};
use dv_index::read_chunk_index;
use dv_sql::analysis::attribute_ranges;
use dv_sql::BoundQuery;
use dv_types::{DvError, IntervalSet, Result};

use crate::afc::{build_afcs, Afc, WorkingSet};
use crate::groups::find_file_groups;
use crate::prune::{prune_afcs, PruneCertificate};
use crate::segment::{enumerate_segments, LoadedChunkIndex, Segment};

/// Per-node slice of a query plan.
#[derive(Debug, Clone)]
pub struct NodePlan {
    /// Cluster node id.
    pub node: usize,
    /// Aligned file chunks to extract on this node (statically empty
    /// chunks already removed).
    pub afcs: Vec<Afc>,
    /// Static prune verdicts for `afcs` plus drop accounting.
    pub prune: PruneCertificate,
    /// True when any AFC touches a file with a non-affine codec
    /// (CSV/zstd): byte offsets are logical-image coordinates, so
    /// direct-path I/O cost bounds degrade from exact to upper bounds.
    pub nonaffine: bool,
}

impl NodePlan {
    /// Total rows the node will materialize before filtering.
    pub fn planned_rows(&self) -> u64 {
        self.afcs.iter().map(|a| a.num_rows).sum()
    }

    /// Total bytes the node will read.
    pub fn planned_bytes(&self) -> u64 {
        self.afcs.iter().map(|a| a.bytes_read()).sum()
    }
}

/// A fully planned query: AFC schedules per node plus the row-shape
/// bookkeeping the runtime services need.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Attributes materialized into working rows.
    pub working: WorkingSet,
    /// For each output column, its position within working rows.
    pub output_positions: Vec<usize>,
    /// Per-node AFC schedules (one entry per cluster node, possibly
    /// with zero AFCs).
    pub node_plans: Vec<NodePlan>,
    /// The analyzed per-attribute ranges (kept for diagnostics and the
    /// data-mover's partition planner).
    pub ranges: HashMap<String, IntervalSet>,
    /// Aggregation context (`None` = plain scan query).
    pub agg: Option<AggPrep>,
    /// Whether nodes fold partial aggregates before shipping.
    pub agg_pushdown: bool,
}

impl QueryPlan {
    /// Total rows across nodes before filtering.
    pub fn planned_rows(&self) -> u64 {
        self.node_plans.iter().map(|n| n.planned_rows()).sum()
    }

    /// Total bytes read across nodes.
    pub fn planned_bytes(&self) -> u64 {
        self.node_plans.iter().map(|n| n.planned_bytes()).sum()
    }
}

/// Verdict of the `dv-verify` semantic analysis over the descriptor
/// this dataset was compiled from.
///
/// `Safe` certifies that every layout property was proved (no
/// overlapping DATA extents, all accesses in-bounds, aligned file
/// groups agree on iteration counts, no dead regions), so the
/// extractor may run the unchecked columnar decode path. `Refuted`
/// and `Unverified` keep today's per-row checked path. The
/// certificate never weakens memory safety: the unchecked path still
/// validates each run's total length before any raw reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Certificate {
    /// No verification pass has run (or it could not decide).
    #[default]
    Unverified,
    /// All four layout properties proved.
    Safe,
    /// At least one property refuted with a counterexample.
    Refuted,
}

impl Certificate {
    fn from_u8(v: u8) -> Certificate {
        match v {
            1 => Certificate::Safe,
            2 => Certificate::Refuted,
            _ => Certificate::Unverified,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Certificate::Unverified => 0,
            Certificate::Safe => 1,
            Certificate::Refuted => 2,
        }
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Certificate::Unverified => f.write_str("unverified"),
            Certificate::Safe => f.write_str("safe"),
            Certificate::Refuted => f.write_str("refuted"),
        }
    }
}

/// Phase-1 output: the "generated code" of the paper, as a specialized
/// plan object. Shared across queries and threads.
pub struct CompiledDataset {
    /// The resolved dataset model.
    pub model: Arc<DatasetModel>,
    /// Filesystem root per cluster node (simulated cluster maps every
    /// node onto a local directory).
    pub roots: Vec<PathBuf>,
    /// Loaded chunk indexes, keyed by file id (only chunked files).
    chunk_indexes: HashMap<usize, Arc<LoadedChunkIndex>>,
    /// Verification verdict (atomic so it can be stamped after
    /// compilation, before the dataset is shared across threads).
    certificate: AtomicU8,
}

impl CompiledDataset {
    /// Compile the model against the storage roots. `roots[node]` is
    /// the directory that hosts node `node`'s files.
    pub fn compile(model: Arc<DatasetModel>, roots: Vec<PathBuf>) -> Result<CompiledDataset> {
        if roots.len() != model.node_count() {
            return Err(DvError::Runtime(format!(
                "{} storage roots supplied for {} cluster nodes",
                roots.len(),
                model.node_count()
            )));
        }
        // Load every CHUNKED index once; identical index paths are
        // shared.
        let mut by_path: HashMap<(usize, String), Arc<LoadedChunkIndex>> = HashMap::new();
        let mut chunk_indexes = HashMap::new();
        for f in &model.files {
            if let Some(ResolvedItem::Chunked { index_node, index_path, .. }) = f.layout.first() {
                let key = (*index_node, index_path.clone());
                let loaded = match by_path.get(&key) {
                    Some(l) => Arc::clone(l),
                    None => {
                        let full = roots[*index_node].join(index_path);
                        let (dims, entries) = read_chunk_index(&full)?;
                        if dims != model.index_attrs.len() {
                            return Err(DvError::Runtime(format!(
                                "chunk index {} has {dims} dimensions but DATAINDEX declares \
                                 {} attributes",
                                full.display(),
                                model.index_attrs.len()
                            )));
                        }
                        let loaded =
                            Arc::new(LoadedChunkIndex::new(model.index_attrs.clone(), entries));
                        by_path.insert(key, Arc::clone(&loaded));
                        loaded
                    }
                };
                chunk_indexes.insert(f.id, loaded);
            }
        }
        Ok(CompiledDataset { model, roots, chunk_indexes, certificate: AtomicU8::new(0) })
    }

    /// The verification verdict attached to this dataset.
    pub fn certificate(&self) -> Certificate {
        Certificate::from_u8(self.certificate.load(Ordering::Relaxed))
    }

    /// Attach a verification verdict. Normally called once, right
    /// after `dv-verify` ran over the descriptor this was compiled
    /// from; extractors read it at construction.
    pub fn set_certificate(&self, cert: Certificate) {
        self.certificate.store(cert.as_u8(), Ordering::Relaxed);
    }

    /// The chunk index of a file, if it has one.
    pub fn chunk_index(&self, file: usize) -> Option<&LoadedChunkIndex> {
        self.chunk_indexes.get(&file).map(|a| a.as_ref())
    }

    /// Absolute path of a model file.
    pub fn file_path(&self, file: usize) -> PathBuf {
        let f = &self.model.files[file];
        self.roots[f.node].join(&f.rel_path)
    }

    /// Validate the descriptor against the actual files: existence and
    /// sizes for fixed layouts, byte coverage for chunked layouts.
    /// Returns all discrepancies (empty = clean). This is the check a
    /// repository administrator runs after writing a descriptor
    /// (`datavirt validate`).
    pub fn verify_files(&self) -> Vec<FileIssue> {
        let mut issues = Vec::new();
        for f in &self.model.files {
            let path = self.file_path(f.id);
            let actual = match std::fs::metadata(&path) {
                Ok(m) => m.len(),
                Err(_) => {
                    issues.push(FileIssue::Missing { file: f.id, path });
                    continue;
                }
            };
            if !f.codec.is_affine() {
                // CSV/zstd physical sizes are data-dependent; the
                // logical image is validated at decode time instead.
                continue;
            }
            if let Some(expected) = f.expected_size(&self.model.attr_sizes) {
                if expected != actual {
                    issues.push(FileIssue::SizeMismatch { file: f.id, path, expected, actual });
                }
            } else if let Some(index) = self.chunk_index(f.id) {
                // Chunked: the index must fit within the data file.
                let stride: u64 = match f.layout.first() {
                    Some(ResolvedItem::Chunked { attrs, .. }) => attrs
                        .iter()
                        .map(|a| *self.model.attr_sizes.get(a).unwrap_or(&0) as u64)
                        .sum(),
                    _ => 0,
                };
                let needed =
                    index.entries.iter().map(|e| e.offset + e.rows * stride).max().unwrap_or(0);
                if needed > actual {
                    issues.push(FileIssue::ChunkBeyondEof { file: f.id, path, needed, actual });
                }
            }
        }
        issues
    }

    /// Phase 2a — the *central* (per-query, node-independent) part of
    /// planning: range analysis and working-row layout. Cheap; runs in
    /// the query service.
    pub fn prepare_query(&self, query: &BoundQuery) -> Result<QueryPrep> {
        if !query.dataset.eq_ignore_ascii_case(&self.model.dataset_name) {
            return Err(DvError::Binding(format!(
                "query addresses dataset `{}` but this service virtualizes `{}`",
                query.dataset, self.model.dataset_name
            )));
        }

        // Range analysis, converted to attribute-name keys.
        let mut ranges: HashMap<String, IntervalSet> = HashMap::new();
        if let Some(pred) = &query.predicate {
            for (attr_idx, set) in attribute_ranges(pred) {
                ranges.insert(self.model.schema.attr_at(attr_idx).name.clone(), set);
            }
        }

        let working = WorkingSet::new(&self.model, query.needed_attrs());
        let output_positions = query
            .projection
            .iter()
            .map(|&attr| {
                working
                    .attrs
                    .iter()
                    .position(|&w| w == attr)
                    .expect("projection attr missing from working set")
            })
            .collect();
        let agg = query.agg.as_ref().map(|spec| {
            let pos = |attr: usize| {
                working
                    .attrs
                    .iter()
                    .position(|&w| w == attr)
                    .expect("aggregate attr missing from working set")
            };
            AggPrep {
                group_pos: spec.group_by.iter().map(|&a| pos(a)).collect(),
                arg_pos: spec.aggs.iter().map(|a| a.arg.map(pos)).collect(),
                spec: spec.clone(),
            }
        });
        Ok(QueryPrep {
            working,
            output_positions,
            ranges,
            predicate: query.predicate.clone(),
            prune_enabled: prune_enabled_by_env(),
            agg,
            agg_pushdown: agg_pushdown_enabled_by_env(),
        })
    }

    /// Phase 2b — the *per-node* part of planning (the generated index
    /// function): file grouping and AFC alignment for one node. In
    /// STORM the indexing service is distributed, so this runs on each
    /// node's worker and counts as that node's work.
    pub fn plan_node(&self, prep: &QueryPrep, node: usize) -> Result<NodePlan> {
        // Segment enumeration is cached per file within the node plan:
        // a file (e.g. COORDS) may participate in many groups.
        let mut seg_cache: HashMap<usize, Arc<Vec<Segment>>> = HashMap::new();
        let groups = find_file_groups(&self.model, node, &prep.ranges, &prep.working);
        let mut afcs = Vec::new();
        for group in &groups {
            let mut segs: Vec<Arc<Vec<Segment>>> = Vec::with_capacity(group.len());
            for f in group {
                let entry = match seg_cache.get(&f.id) {
                    Some(s) => Arc::clone(s),
                    None => {
                        let s = Arc::new(enumerate_segments(
                            f,
                            &self.model.attr_sizes,
                            &prep.ranges,
                            self.chunk_index(f.id),
                        )?);
                        seg_cache.insert(f.id, Arc::clone(&s));
                        s
                    }
                };
                segs.push(entry);
            }
            let seg_slices: Vec<&[Segment]> = segs.iter().map(|s| s.as_slice()).collect();
            afcs.extend(build_afcs(&self.model, group, &seg_slices, &prep.working, &prep.ranges)?);
        }
        // Abstract-interpret the predicate over each AFC's implicit
        // hulls: provably-empty chunks leave the plan here, before the
        // I/O scheduler ever sees them.
        let predicate = if prep.prune_enabled { prep.predicate.as_ref() } else { None };
        let (afcs, prune) = prune_afcs(predicate, &prep.working, afcs);
        let nonaffine = afcs
            .iter()
            .flat_map(|a| &a.entries)
            .any(|e| !self.model.files[e.file].codec.is_affine());
        Ok(NodePlan { node, afcs, prune, nonaffine })
    }

    /// Phase 2, whole-cluster convenience: plan every node centrally
    /// (used by tools, tests and `explain`; the runtime distributes
    /// [`CompiledDataset::plan_node`] instead).
    pub fn plan_query(&self, query: &BoundQuery) -> Result<QueryPlan> {
        let prep = self.prepare_query(query)?;
        let mut node_plans = Vec::with_capacity(self.model.node_count());
        for node in 0..self.model.node_count() {
            node_plans.push(self.plan_node(&prep, node)?);
        }
        Ok(QueryPlan {
            working: prep.working,
            output_positions: prep.output_positions,
            node_plans,
            ranges: prep.ranges,
            agg: prep.agg,
            agg_pushdown: prep.agg_pushdown,
        })
    }
}

/// One discrepancy found by [`CompiledDataset::verify_files`].
#[derive(Debug, Clone, PartialEq)]
pub enum FileIssue {
    /// The file does not exist (or is unreadable).
    Missing { file: usize, path: PathBuf },
    /// On-disk size differs from what the descriptor implies.
    SizeMismatch { file: usize, path: PathBuf, expected: u64, actual: u64 },
    /// A chunk index references bytes beyond the end of the data file.
    ChunkBeyondEof { file: usize, path: PathBuf, needed: u64, actual: u64 },
}

impl std::fmt::Display for FileIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileIssue::Missing { path, .. } => write!(f, "missing: {}", path.display()),
            FileIssue::SizeMismatch { path, expected, actual, .. } => write!(
                f,
                "size mismatch: {} is {actual} bytes, descriptor implies {expected}",
                path.display()
            ),
            FileIssue::ChunkBeyondEof { path, needed, actual, .. } => write!(
                f,
                "chunk index overruns: {} needs {needed} bytes, file has {actual}",
                path.display()
            ),
        }
    }
}

/// Per-query aggregation context shared by all node workers: the bound
/// spec plus the positions of its columns inside working rows.
#[derive(Debug, Clone)]
pub struct AggPrep {
    /// The bound aggregation spec.
    pub spec: dv_sql::BoundAggSpec,
    /// Position of each `GROUP BY` column within working rows.
    pub group_pos: Vec<usize>,
    /// Position of each aggregate argument within working rows
    /// (`None` = `COUNT(*)`).
    pub arg_pos: Vec<Option<usize>>,
}

/// Central planning output shared by all node planners.
#[derive(Debug, Clone)]
pub struct QueryPrep {
    /// Attributes materialized into working rows.
    pub working: WorkingSet,
    /// For each output column, its position within working rows.
    pub output_positions: Vec<usize>,
    /// Analyzed per-attribute ranges.
    pub ranges: HashMap<String, IntervalSet>,
    /// The bound predicate, kept for per-AFC prune verdicts.
    pub predicate: Option<dv_sql::BoundExpr>,
    /// Static pruning switch (default on; `DV_NO_PRUNE=1` or
    /// `QueryOptions::no_prune` turn it off for ablation).
    pub prune_enabled: bool,
    /// Aggregation context (`None` = plain scan query).
    pub agg: Option<AggPrep>,
    /// Partial-aggregation pushdown switch (default on;
    /// `DV_NO_AGG_PUSHDOWN=1` or `QueryOptions::no_agg_pushdown` turn
    /// it off: nodes then ship filtered rows and the absorber
    /// aggregates client-side).
    pub agg_pushdown: bool,
}

/// Pruning default from the environment: enabled unless `DV_NO_PRUNE`
/// is set to something other than `0`/empty.
fn prune_enabled_by_env() -> bool {
    !matches!(std::env::var("DV_NO_PRUNE"), Ok(v) if !v.is_empty() && v != "0")
}

/// Aggregation-pushdown default from the environment: enabled unless
/// `DV_NO_AGG_PUSHDOWN` is set to something other than `0`/empty.
fn agg_pushdown_enabled_by_env() -> bool {
    !matches!(std::env::var("DV_NO_AGG_PUSHDOWN"), Ok(v) if !v.is_empty() && v != "0")
}

/// Convenience: compile a descriptor text directly against a single
/// root directory layout where node `i`'s storage lives at
/// `base/<node-name>` (the layout `dv-datagen` writes).
pub fn compile_from_text(descriptor: &str, base: &Path) -> Result<CompiledDataset> {
    let model = Arc::new(dv_descriptor::compile(descriptor)?);
    let roots = model.nodes.iter().map(|n| base.join(n)).collect();
    CompiledDataset::compile(model, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_sql::{bind, parse, UdfRegistry};

    const DESC: &str = r#"
[IPARS]
REL = short int
TIME = int
X = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = n0/d
DIR[1] = n1/d

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET coords DATASET vars }
  DATASET "coords" {
    DATASPACE { LOOP GRID ($DIRID*10+1):(($DIRID+1)*10):1 { X } }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:1:1 }
  }
  DATASET "vars" {
    DATASPACE {
      LOOP TIME 1:20:1 {
        LOOP GRID ($DIRID*10+1):(($DIRID+1)*10):1 { SOIL SGAS }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:1:1 DIRID = 0:1:1 }
  }
}
"#;

    fn compiled() -> CompiledDataset {
        let model = Arc::new(dv_descriptor::compile(DESC).unwrap());
        let roots = vec![PathBuf::from("/tmp/n0"), PathBuf::from("/tmp/n1")];
        CompiledDataset::compile(model, roots).unwrap()
    }

    fn plan(sql: &str) -> QueryPlan {
        let c = compiled();
        let q = parse(sql).unwrap();
        let b = bind(&q, &c.model.schema, &UdfRegistry::with_builtins()).unwrap();
        c.plan_query(&b).unwrap()
    }

    #[test]
    fn full_scan_plan() {
        let p = plan("SELECT * FROM IparsData");
        assert_eq!(p.node_plans.len(), 2);
        // Per node: 2 RELs × 20 TIMEs = 40 AFCs of 10 rows.
        for np in &p.node_plans {
            assert_eq!(np.afcs.len(), 40);
            assert_eq!(np.planned_rows(), 400);
        }
        // 2 nodes × 2 REL × 20 TIME × 10 rows = 800 rows.
        assert_eq!(p.planned_rows(), 800);
        assert_eq!(p.output_positions, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn range_query_prunes() {
        let p = plan("SELECT * FROM IparsData WHERE TIME > 1000");
        assert_eq!(p.planned_rows(), 0);
        let p = plan("SELECT * FROM IparsData WHERE TIME >= 5 AND TIME <= 6 AND REL = 0");
        // Per node: 1 REL × 2 TIMEs.
        assert_eq!(p.planned_rows(), 2 * 2 * 10);
    }

    #[test]
    fn projection_reduces_bytes() {
        let full = plan("SELECT * FROM IparsData");
        let narrow = plan("SELECT SOIL FROM IparsData");
        assert!(narrow.planned_bytes() < full.planned_bytes());
        // SOIL-only still reads the full 8-byte record (SOIL+SGAS are
        // interleaved) but skips COORDS entirely.
        assert_eq!(narrow.planned_bytes(), 800 * 8);
    }

    #[test]
    fn wrong_dataset_name_rejected() {
        let c = compiled();
        let q = parse("SELECT * FROM OtherData").unwrap();
        let b = bind(&q, &c.model.schema, &UdfRegistry::with_builtins()).unwrap();
        assert!(c.plan_query(&b).is_err());
    }

    #[test]
    fn root_count_mismatch_rejected() {
        let model = Arc::new(dv_descriptor::compile(DESC).unwrap());
        let err = CompiledDataset::compile(model, vec![PathBuf::from("/tmp/only-one")]);
        assert!(err.is_err());
    }

    #[test]
    fn filter_on_stored_attr_does_not_prune_rows() {
        // SOIL > 0.7 cannot prune chunks (SOIL values are data); the
        // plan must read everything and leave filtering to the runtime.
        let p = plan("SELECT * FROM IparsData WHERE SOIL > 0.7");
        assert_eq!(p.planned_rows(), 800);
    }

    #[test]
    fn udf_query_plans_full_scan_with_needed_attrs() {
        let p = plan("SELECT SOIL FROM IparsData WHERE SPEED(X, X, X) < 30.0");
        // Working set: X and SOIL.
        assert_eq!(p.working.names, vec!["X", "SOIL"]);
        assert_eq!(p.planned_rows(), 800);
        // Output is SOIL only, at working position 1.
        assert_eq!(p.output_positions, vec![1]);
        // A UDF predicate can never prune or bypass filtering.
        for np in &p.node_plans {
            assert_eq!(np.prune.groups_pruned, 0);
            assert_eq!(np.prune.groups_full, 0);
        }
    }

    #[test]
    fn arith_predicate_prunes_beyond_range_analysis() {
        // attribute_ranges cannot analyze `TIME * 10`, so segment
        // pruning reads everything; the abstract interpreter drops the
        // provably-empty chunks afterwards.
        let p = plan("SELECT SOIL FROM IparsData WHERE TIME * 10 <= 40");
        // TIME in 1..=4 of 1..=20 survive: per node 2 REL × 4 TIME.
        assert_eq!(p.planned_rows(), 2 * 2 * 4 * 10);
        for np in &p.node_plans {
            assert_eq!(np.prune.groups_total, 40);
            assert_eq!(np.prune.groups_pruned, 32);
            // Every retained chunk is TIME<=4, provably satisfying.
            assert_eq!(np.prune.groups_full, 8);
            assert_eq!(np.prune.verdicts.len(), np.afcs.len());
            assert_eq!(np.prune.bytes_avoided, 32 * 10 * 8);
        }
    }

    #[test]
    fn tautological_predicate_marks_full() {
        let p = plan("SELECT SOIL FROM IparsData WHERE TIME >= 1");
        assert_eq!(p.planned_rows(), 800);
        for np in &p.node_plans {
            assert_eq!(np.prune.groups_pruned, 0);
            assert_eq!(np.prune.groups_full, np.afcs.len() as u64);
        }
    }

    #[test]
    fn prune_disabled_keeps_everything() {
        let c = compiled();
        let q = parse("SELECT SOIL FROM IparsData WHERE TIME * 10 <= 40").unwrap();
        let b = bind(&q, &c.model.schema, &UdfRegistry::with_builtins()).unwrap();
        let mut prep = c.prepare_query(&b).unwrap();
        prep.prune_enabled = false;
        let np = c.plan_node(&prep, 0).unwrap();
        assert_eq!(np.afcs.len(), 40);
        assert_eq!(np.prune.groups_pruned, 0);
        assert_eq!(np.prune.verdicts.len(), 40);
    }
}
