//! The I/O scheduler: run coalescing, double-buffered readahead, and
//! a cross-query segment cache.
//!
//! AFC plans describe *what* to read — one byte run per entry. This
//! module decides *how*: the byte runs of a working set (a group of
//! consecutive AFCs bounded by [`IoOptions::group_bytes`]) are sorted
//! per file and merged into large coalesced reads when the gap between
//! neighbouring runs is at most [`IoOptions::coalesce_gap`]; decoded
//! columns are then sliced out of the merged buffers. A background
//! prefetch thread (bounded crossbeam channel) fetches group `g+1`
//! while group `g` decodes, and a byte-budgeted LRU cache keyed by
//! `(file, coalesced range)` lets repeated or overlapping queries hit
//! warm segments instead of re-reading flat files. Cache entries carry
//! the file's `(len, mtime_nanos)` generation and are invalidated when
//! the file changes on disk — nanosecond mtimes so that two rewrites
//! within the same second cannot serve stale bytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dv_types::{CancelToken, DvError, Result};

use crate::afc::Afc;
use crate::extract::Extractor;

/// Tuning knobs for the I/O scheduler, carried in
/// `QueryOptions::io`. The defaults enable the full pipeline; the
/// ablation benchmark and differential tests turn parts off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoOptions {
    /// Master switch. `false` falls back to one `read` per AFC entry.
    pub enabled: bool,
    /// Merge two runs of the same file when the byte gap between them
    /// is at most this (gap bytes are read and discarded).
    pub coalesce_gap: u64,
    /// Target working-set size: consecutive AFCs are grouped until
    /// their runs sum to this many bytes, and each group is fetched as
    /// one schedule.
    pub group_bytes: u64,
    /// Prefetch the next group on a background thread while the
    /// current one decodes.
    pub readahead: bool,
    /// Bounded depth of the prefetch channel (fetched groups queued
    /// ahead of the decoder).
    pub prefetch_depth: usize,
    /// Byte budget of the cross-query segment cache; 0 disables it.
    pub cache_bytes: u64,
}

impl Default for IoOptions {
    fn default() -> IoOptions {
        IoOptions {
            enabled: true,
            coalesce_gap: 64 * 1024,
            group_bytes: 8 * 1024 * 1024,
            readahead: true,
            prefetch_depth: 2,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

impl IoOptions {
    /// Everything off: the legacy one-read-per-entry path.
    pub fn disabled() -> IoOptions {
        IoOptions { enabled: false, ..IoOptions::default() }
    }
}

/// Shared atomic I/O counters, aggregated across node workers during
/// one query and snapshotted into `QueryStats`.
#[derive(Debug, Default)]
pub struct IoStats {
    /// `read` syscalls issued against data files.
    pub read_syscalls: AtomicU64,
    /// AFC byte runs scheduled (the pre-coalescing read count).
    pub runs_scheduled: AtomicU64,
    /// Bytes actually read from the filesystem.
    pub bytes_issued: AtomicU64,
    /// Bytes of scheduled runs consumed by decoding.
    pub bytes_used: AtomicU64,
    /// Bytes served from the segment cache.
    pub cache_hit_bytes: AtomicU64,
    /// Bytes that missed the segment cache and were read.
    pub cache_miss_bytes: AtomicU64,
    /// Prefetched groups that were ready when the decoder asked.
    pub prefetch_hits: AtomicU64,
    /// Groups the decoder had to wait for.
    pub prefetch_waits: AtomicU64,
    /// Total time the decoder spent waiting on the prefetcher.
    pub prefetch_wait_ns: AtomicU64,
    /// Bytes this query inserted into the shared segment cache (its
    /// footprint in the cross-query budget).
    pub cache_insert_bytes: AtomicU64,
    /// Whole-file codec decodes (CSV parses, zstd inflations) run to
    /// satisfy cache misses on non-affine files. A warm segment cache
    /// serves every scheduled range without this counter moving.
    pub decode_calls: AtomicU64,
    /// Logical bytes produced by those decodes.
    pub decode_bytes: AtomicU64,
}

impl IoStats {
    /// Copy the counters into a plain snapshot.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            read_syscalls: self.read_syscalls.load(Ordering::Relaxed),
            runs_scheduled: self.runs_scheduled.load(Ordering::Relaxed),
            bytes_issued: self.bytes_issued.load(Ordering::Relaxed),
            bytes_used: self.bytes_used.load(Ordering::Relaxed),
            cache_hit_bytes: self.cache_hit_bytes.load(Ordering::Relaxed),
            cache_miss_bytes: self.cache_miss_bytes.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_waits: self.prefetch_waits.load(Ordering::Relaxed),
            prefetch_wait: Duration::from_nanos(self.prefetch_wait_ns.load(Ordering::Relaxed)),
            cache_insert_bytes: self.cache_insert_bytes.load(Ordering::Relaxed),
            decode_calls: self.decode_calls.load(Ordering::Relaxed),
            decode_bytes: self.decode_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`IoStats`], carried in `QueryStats::io`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// `read` syscalls issued against data files.
    pub read_syscalls: u64,
    /// AFC byte runs scheduled (the pre-coalescing read count).
    pub runs_scheduled: u64,
    /// Bytes actually read from the filesystem.
    pub bytes_issued: u64,
    /// Bytes of scheduled runs consumed by decoding.
    pub bytes_used: u64,
    /// Bytes served from the segment cache.
    pub cache_hit_bytes: u64,
    /// Bytes that missed the segment cache and were read.
    pub cache_miss_bytes: u64,
    /// Prefetched groups ready when the decoder asked.
    pub prefetch_hits: u64,
    /// Groups the decoder had to wait for.
    pub prefetch_waits: u64,
    /// Total decoder time spent waiting on the prefetcher.
    pub prefetch_wait: Duration,
    /// Bytes this query inserted into the shared segment cache.
    pub cache_insert_bytes: u64,
    /// Whole-file codec decodes run to satisfy cache misses.
    pub decode_calls: u64,
    /// Logical bytes produced by those decodes.
    pub decode_bytes: u64,
}

impl IoSnapshot {
    /// Scheduled runs per syscall (≥ 1 when coalescing merges reads;
    /// 0 when nothing ran through the scheduler).
    pub fn coalesce_ratio(&self) -> f64 {
        if self.read_syscalls == 0 {
            0.0
        } else {
            self.runs_scheduled as f64 / self.read_syscalls as f64
        }
    }

    /// Fraction of scheduled segment bytes served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hit_bytes + self.cache_miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.cache_hit_bytes as f64 / total as f64
        }
    }
}

/// A file's on-disk identity at scheduling time; a change invalidates
/// cached segments of that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileGen {
    /// Byte length.
    pub len: u64,
    /// Modification time in nanoseconds since the Unix epoch.
    /// Whole-second granularity is not enough: a file rewritten twice
    /// within one second would keep its `(len, mtime)` pair and the
    /// cache would serve the first rewrite's bytes.
    pub mtime_nanos: u128,
}

/// One coalesced read: a contiguous byte range of one file covering
/// one or more scheduled runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescedRead {
    /// File id in the dataset model.
    pub file: usize,
    /// First byte of the merged range.
    pub start: u64,
    /// Length of the merged range.
    pub len: u64,
}

/// Static coalescing summary of an AFC list (used by `explain` and
/// the scheduler's accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceSummary {
    /// Byte runs scheduled before merging.
    pub runs: u64,
    /// Coalesced reads after merging.
    pub reads: u64,
    /// Bytes the runs consume (duplicates counted per run).
    pub bytes_used: u64,
    /// Bytes the merged reads fetch (duplicates and gaps collapsed).
    pub bytes_issued: u64,
}

/// Merge the byte runs of `afcs` into per-file coalesced reads. Runs
/// whose gap is at most `gap` merge; overlapping runs (e.g. a
/// coordinate file re-read by every AFC of a group) dedupe into one
/// read. The result is sorted by `(file, start)`.
pub fn coalesce_runs(afcs: &[Afc], gap: u64) -> Vec<CoalescedRead> {
    let mut runs: Vec<(usize, u64, u64)> = Vec::new();
    for afc in afcs {
        for e in &afc.entries {
            let len = afc.num_rows * e.stride;
            if len > 0 {
                runs.push((e.file, e.offset, e.offset + len));
            }
        }
    }
    runs.sort_unstable();
    let mut out: Vec<CoalescedRead> = Vec::new();
    for (file, start, end) in runs {
        match out.last_mut() {
            Some(last) if last.file == file && start <= last.start + last.len + gap => {
                let new_end = end.max(last.start + last.len);
                last.len = new_end - last.start;
            }
            _ => out.push(CoalescedRead { file, start, len: end - start }),
        }
    }
    out
}

/// Summarize what the scheduler would do for `afcs` without reading
/// anything.
pub fn coalesce_summary(afcs: &[Afc], gap: u64) -> CoalesceSummary {
    let reads = coalesce_runs(afcs, gap);
    let mut s = CoalesceSummary { reads: reads.len() as u64, ..Default::default() };
    s.bytes_issued = reads.iter().map(|r| r.len).sum();
    for afc in afcs {
        for e in &afc.entries {
            let len = afc.num_rows * e.stride;
            if len > 0 {
                s.runs += 1;
                s.bytes_used += len;
            }
        }
    }
    s
}

/// Split an AFC list into consecutive working-set groups of at most
/// `group_bytes` scheduled bytes each (always at least one AFC per
/// group). Returned as index ranges into `afcs`.
pub fn group_afcs(afcs: &[Afc], group_bytes: u64) -> Vec<std::ops::Range<usize>> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, afc) in afcs.iter().enumerate() {
        let b = afc.bytes_read();
        if i > start && acc + b > group_bytes {
            groups.push(start..i);
            start = i;
            acc = 0;
        }
        acc += b;
    }
    if start < afcs.len() {
        groups.push(start..afcs.len());
    }
    groups
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SegKey {
    file: usize,
    start: u64,
    len: u64,
}

struct CacheEntry {
    data: Arc<Vec<u8>>,
    generation: FileGen,
    tick: u64,
}

struct CacheInner {
    budget: u64,
    used: u64,
    tick: u64,
    map: HashMap<SegKey, CacheEntry>,
    /// Last generation observed per file; a change purges the file.
    gens: HashMap<usize, FileGen>,
}

/// Cross-query segment cache: a byte-budgeted LRU over coalesced
/// reads, keyed by `(file, range)` and invalidated when the file's
/// `(len, mtime_nanos)` generation changes.
pub struct SegmentCache {
    inner: Mutex<CacheInner>,
}

impl SegmentCache {
    /// Create a cache with `budget` bytes of capacity.
    pub fn new(budget: u64) -> SegmentCache {
        SegmentCache {
            inner: Mutex::new(CacheInner {
                budget,
                used: 0,
                tick: 0,
                map: HashMap::new(),
                gens: HashMap::new(),
            }),
        }
    }

    /// Adjust the byte budget (evicting LRU entries if shrinking).
    pub fn set_budget(&self, budget: u64) {
        let mut inner = self.inner.lock().expect("segment cache poisoned");
        inner.budget = budget;
        Self::evict_to_fit(&mut inner, 0);
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().expect("segment cache poisoned").used
    }

    /// Record the current generation of `file`; if it changed since
    /// the last observation, purge that file's segments and report
    /// `true` (the caller should also drop any pooled file handle).
    pub fn observe_generation(&self, file: usize, generation: FileGen) -> bool {
        let mut inner = self.inner.lock().expect("segment cache poisoned");
        match inner.gens.insert(file, generation) {
            Some(prev) if prev == generation => false,
            None => false,
            Some(_) => {
                let mut freed = 0u64;
                inner.map.retain(|k, e| {
                    if k.file == file {
                        freed += e.data.len() as u64;
                        false
                    } else {
                        true
                    }
                });
                inner.used -= freed;
                true
            }
        }
    }

    /// Look up a coalesced range; hits bump recency. A generation
    /// mismatch (file changed since insert) evicts and misses.
    pub fn get(&self, read: &CoalescedRead, generation: FileGen) -> Option<Arc<Vec<u8>>> {
        let key = SegKey { file: read.file, start: read.start, len: read.len };
        let mut inner = self.inner.lock().expect("segment cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(e) if e.generation == generation => {
                e.tick = tick;
                Some(Arc::clone(&e.data))
            }
            Some(_) => {
                let e = inner.map.remove(&key).expect("entry present");
                inner.used -= e.data.len() as u64;
                None
            }
            None => None,
        }
    }

    /// Insert a fetched range, evicting LRU entries to fit the
    /// budget. Ranges larger than the whole budget are not cached.
    pub fn insert(&self, read: &CoalescedRead, generation: FileGen, data: Arc<Vec<u8>>) {
        let bytes = data.len() as u64;
        let mut inner = self.inner.lock().expect("segment cache poisoned");
        if bytes > inner.budget {
            return;
        }
        Self::evict_to_fit(&mut inner, bytes);
        inner.tick += 1;
        let entry = CacheEntry { data, generation, tick: inner.tick };
        let key = SegKey { file: read.file, start: read.start, len: read.len };
        if let Some(old) = inner.map.insert(key, entry) {
            inner.used -= old.data.len() as u64;
        }
        inner.used += bytes;
    }

    fn evict_to_fit(inner: &mut CacheInner, incoming: u64) {
        while inner.used + incoming > inner.budget && !inner.map.is_empty() {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .expect("non-empty cache");
            let e = inner.map.remove(&oldest).expect("entry present");
            inner.used -= e.data.len() as u64;
        }
    }
}

/// Per file: `(start, data)` segments sorted by start; ranges are
/// disjoint.
type FileSegments = HashMap<usize, Vec<(u64, Arc<Vec<u8>>)>>;

/// The segments fetched for one working-set group, ready for slicing.
pub struct FetchedGroup {
    segs: FileSegments,
}

impl FetchedGroup {
    /// The bytes of run `[offset, offset+len)` of `file`, if the run
    /// was scheduled (it then lies inside exactly one segment).
    pub fn slice(&self, file: usize, offset: u64, len: u64) -> Option<&[u8]> {
        let segs = self.segs.get(&file)?;
        let idx = segs.partition_point(|(start, _)| *start <= offset).checked_sub(1)?;
        let (start, data) = &segs[idx];
        let rel = (offset - start) as usize;
        let end = rel.checked_add(len as usize)?;
        data.get(rel..end)
    }
}

/// One node worker's view of the I/O pipeline: coalesces, consults
/// the shared cache, and issues reads through the extractor's handle
/// pool. Created per query per node ("per-node scheduler instances").
pub struct IoScheduler {
    extractor: Extractor,
    opts: IoOptions,
    cache: Option<Arc<SegmentCache>>,
    stats: Arc<IoStats>,
    cancel: CancelToken,
}

impl IoScheduler {
    /// Build a scheduler over `extractor`'s files. `cache` is the
    /// server's cross-query segment cache (ignored when
    /// `opts.cache_bytes` is 0).
    pub fn new(
        extractor: Extractor,
        opts: IoOptions,
        cache: Option<Arc<SegmentCache>>,
        stats: Arc<IoStats>,
    ) -> IoScheduler {
        let cache = if opts.cache_bytes == 0 { None } else { cache };
        IoScheduler { extractor, opts, cache, stats, cancel: CancelToken::new() }
    }

    /// Attach a query's cancellation token; [`IoScheduler::fetch`]
    /// checks it before every coalesced read.
    pub fn with_cancel(mut self, cancel: CancelToken) -> IoScheduler {
        self.cancel = cancel;
        self
    }

    /// The scheduler's options.
    pub fn options(&self) -> &IoOptions {
        &self.opts
    }

    /// Fetch one working-set group: coalesce its runs, serve what the
    /// cache holds, read the rest.
    pub fn fetch(&self, afcs: &[Afc]) -> Result<FetchedGroup> {
        let reads = coalesce_runs(afcs, self.opts.coalesce_gap);
        let mut runs = 0u64;
        let mut used = 0u64;
        for afc in afcs {
            for e in &afc.entries {
                let len = afc.num_rows * e.stride;
                if len > 0 {
                    runs += 1;
                    used += len;
                }
            }
        }
        self.stats.runs_scheduled.fetch_add(runs, Ordering::Relaxed);
        self.stats.bytes_used.fetch_add(used, Ordering::Relaxed);

        let mut gens: HashMap<usize, FileGen> = HashMap::new();
        // Whole-file decoded images of non-affine files, shared by all
        // coalesced ranges of this fetch group (so a group spanning a
        // CSV/zstd file decodes it once, not once per range). Dropped
        // at the end of the call: warmth across groups is the segment
        // cache's job, and it must be measurable.
        let mut decoded: HashMap<usize, Arc<Vec<u8>>> = HashMap::new();
        let mut segs: FileSegments = HashMap::new();
        for read in &reads {
            self.cancel.check()?;
            let generation = match (self.cache.as_deref(), gens.get(&read.file)) {
                (None, _) => FileGen { len: 0, mtime_nanos: 0 },
                (Some(_), Some(g)) => *g,
                (Some(cache), None) => {
                    let g = self.extractor.file_generation(read.file)?;
                    if cache.observe_generation(read.file, g) {
                        // The file changed on disk: a pooled handle
                        // may point at the replaced inode.
                        self.extractor.invalidate_handle(read.file);
                    }
                    gens.insert(read.file, g);
                    g
                }
            };
            let data = match self.cache.as_deref().and_then(|c| c.get(read, generation)) {
                Some(hit) => {
                    self.stats.cache_hit_bytes.fetch_add(read.len, Ordering::Relaxed);
                    hit
                }
                None => {
                    let data = if self.extractor.codec(read.file).is_affine() {
                        let mut buf = vec![0u8; read.len as usize];
                        self.extractor.read_file_at(read.file, read.start, &mut buf)?;
                        self.stats.read_syscalls.fetch_add(1, Ordering::Relaxed);
                        Arc::new(buf)
                    } else {
                        // Non-affine codec: byte offsets only exist in
                        // the decoded image, so decode the whole file
                        // (memoized across this fetch group) and slice
                        // the logical range. The cache stores those
                        // decompressed slices, so warm reads above hit
                        // without decoding.
                        let whole = match decoded.get(&read.file) {
                            Some(w) => Arc::clone(w),
                            None => {
                                let w = self.extractor.decode_physical_file(read.file)?;
                                self.stats.read_syscalls.fetch_add(1, Ordering::Relaxed);
                                self.stats.decode_calls.fetch_add(1, Ordering::Relaxed);
                                self.stats
                                    .decode_bytes
                                    .fetch_add(w.len() as u64, Ordering::Relaxed);
                                decoded.insert(read.file, Arc::clone(&w));
                                w
                            }
                        };
                        let lo = read.start as usize;
                        let slice = lo
                            .checked_add(read.len as usize)
                            .and_then(|hi| whole.get(lo..hi))
                            .ok_or_else(|| missed_run(read.file, read.start, read.len))?;
                        Arc::new(slice.to_vec())
                    };
                    // Issued bytes are counted in logical coordinates
                    // (the range length, not physical file bytes) so
                    // the static bound `bytes_issued ≤ bytes_used +
                    // runs × gap` stays valid for every codec;
                    // physical decode work shows up in decode_bytes.
                    self.stats.bytes_issued.fetch_add(read.len, Ordering::Relaxed);
                    if let Some(cache) = self.cache.as_deref() {
                        self.stats.cache_miss_bytes.fetch_add(read.len, Ordering::Relaxed);
                        self.stats.cache_insert_bytes.fetch_add(read.len, Ordering::Relaxed);
                        cache.insert(read, generation, Arc::clone(&data));
                    }
                    data
                }
            };
            segs.entry(read.file).or_default().push((read.start, data));
        }
        // `reads` is sorted by (file, start), so per-file vectors are
        // already in start order.
        Ok(FetchedGroup { segs })
    }
}

/// Error for a run the scheduler did not cover (a programming error
/// in grouping, surfaced instead of panicking on the hot path).
pub(crate) fn missed_run(file: usize, offset: u64, len: u64) -> DvError {
    DvError::Runtime(format!(
        "I/O scheduler missed scheduled run (file {file}, offset {offset}, len {len})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afc::AfcEntry;

    fn afc(entries: Vec<(usize, u64, u64)>, rows: u64) -> Afc {
        Afc {
            num_rows: rows,
            entries: entries
                .into_iter()
                .map(|(file, offset, stride)| AfcEntry { file, offset, stride })
                .collect(),
            fields: Vec::new(),
            implicits: Vec::new(),
        }
    }

    #[test]
    fn adjacent_runs_merge() {
        // Two 40-byte runs back to back, plus one far away.
        let afcs =
            [afc(vec![(0, 0, 4)], 10), afc(vec![(0, 40, 4)], 10), afc(vec![(0, 10_000, 4)], 10)];
        let reads = coalesce_runs(&afcs, 64);
        assert_eq!(
            reads,
            vec![
                CoalescedRead { file: 0, start: 0, len: 80 },
                CoalescedRead { file: 0, start: 10_000, len: 40 },
            ]
        );
    }

    #[test]
    fn gap_threshold_bridges_small_holes() {
        let afcs = [afc(vec![(0, 0, 4)], 10), afc(vec![(0, 100, 4)], 10)];
        // Gap is 60 bytes: bridged at 64, split at 32.
        assert_eq!(coalesce_runs(&afcs, 64).len(), 1);
        assert_eq!(coalesce_runs(&afcs, 32).len(), 2);
        let merged = &coalesce_runs(&afcs, 64)[0];
        assert_eq!((merged.start, merged.len), (0, 140));
    }

    #[test]
    fn overlapping_runs_dedupe() {
        // The same coordinate-file range read by three AFCs.
        let afcs =
            [afc(vec![(1, 0, 8)], 100), afc(vec![(1, 0, 8)], 100), afc(vec![(1, 0, 8)], 100)];
        let reads = coalesce_runs(&afcs, 0);
        assert_eq!(reads, vec![CoalescedRead { file: 1, start: 0, len: 800 }]);
        let s = coalesce_summary(&afcs, 0);
        assert_eq!(s.runs, 3);
        assert_eq!(s.bytes_used, 2400);
        assert_eq!(s.bytes_issued, 800);
    }

    #[test]
    fn different_files_never_merge() {
        let afcs = [afc(vec![(0, 0, 4), (1, 0, 4)], 10)];
        assert_eq!(coalesce_runs(&afcs, u64::MAX / 4).len(), 2);
    }

    #[test]
    fn contained_run_does_not_shrink_segment() {
        // A short run fully inside a longer one must not truncate it.
        let afcs = [afc(vec![(0, 0, 100)], 10), afc(vec![(0, 200, 10)], 10)];
        let reads = coalesce_runs(&afcs, 0);
        assert_eq!(reads, vec![CoalescedRead { file: 0, start: 0, len: 1000 }]);
    }

    #[test]
    fn groups_respect_byte_budget() {
        let afcs: Vec<Afc> = (0..10).map(|i| afc(vec![(0, i * 400, 4)], 100)).collect();
        // Each AFC reads 400 bytes; budget 1000 → groups of 2.
        let groups = group_afcs(&afcs, 1000);
        assert_eq!(groups.len(), 5);
        assert!(groups.iter().all(|g| g.len() == 2));
        // An oversized AFC still gets its own group.
        let big = [afc(vec![(0, 0, 4)], 1_000_000)];
        assert_eq!(group_afcs(&big, 1000), vec![0..1]);
        assert!(group_afcs(&[], 1000).is_empty());
    }

    fn gen(len: u64) -> FileGen {
        FileGen { len, mtime_nanos: 0 }
    }

    #[test]
    fn cache_lru_evicts_by_budget() {
        let cache = SegmentCache::new(100);
        let r = |start: u64| CoalescedRead { file: 0, start, len: 40 };
        let data = Arc::new(vec![0u8; 40]);
        cache.insert(&r(0), gen(1), Arc::clone(&data));
        cache.insert(&r(40), gen(1), Arc::clone(&data));
        // Touch the first entry so the second is LRU.
        assert!(cache.get(&r(0), gen(1)).is_some());
        cache.insert(&r(80), gen(1), Arc::clone(&data));
        assert_eq!(cache.used_bytes(), 80);
        assert!(cache.get(&r(0), gen(1)).is_some());
        assert!(cache.get(&r(40), gen(1)).is_none(), "LRU entry evicted");
        assert!(cache.get(&r(80), gen(1)).is_some());
    }

    #[test]
    fn cache_rejects_stale_generation() {
        let cache = SegmentCache::new(1000);
        let r = CoalescedRead { file: 3, start: 0, len: 8 };
        cache.insert(&r, gen(8), Arc::new(vec![1u8; 8]));
        assert!(cache.get(&r, gen(8)).is_some());
        assert!(cache.get(&r, gen(9)).is_none(), "generation mismatch must miss");
        // The stale entry is gone entirely.
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn observe_generation_purges_changed_file() {
        let cache = SegmentCache::new(1000);
        let r0 = CoalescedRead { file: 0, start: 0, len: 8 };
        let r1 = CoalescedRead { file: 1, start: 0, len: 8 };
        cache.insert(&r0, gen(8), Arc::new(vec![0u8; 8]));
        cache.insert(&r1, gen(8), Arc::new(vec![0u8; 8]));
        assert!(!cache.observe_generation(0, gen(8)), "first observation is not a change");
        assert!(!cache.observe_generation(0, gen(8)));
        assert!(cache.observe_generation(0, gen(16)), "len change detected");
        assert!(cache.get(&r0, gen(16)).is_none());
        assert!(cache.get(&r1, gen(8)).is_some(), "other files untouched");
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = SegmentCache::new(10);
        let r = CoalescedRead { file: 0, start: 0, len: 100 };
        cache.insert(&r, gen(1), Arc::new(vec![0u8; 100]));
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.get(&r, gen(1)).is_none());
    }

    #[test]
    fn set_budget_shrinks() {
        let cache = SegmentCache::new(100);
        for i in 0..5 {
            let r = CoalescedRead { file: 0, start: i * 20, len: 20 };
            cache.insert(&r, gen(1), Arc::new(vec![0u8; 20]));
        }
        assert_eq!(cache.used_bytes(), 100);
        cache.set_budget(40);
        assert!(cache.used_bytes() <= 40);
    }

    #[test]
    fn fetched_group_slices_runs() {
        let mut segs = HashMap::new();
        segs.insert(0usize, vec![(100u64, Arc::new((0u8..=99).collect::<Vec<u8>>()))]);
        let g = FetchedGroup { segs };
        assert_eq!(g.slice(0, 100, 4), Some(&[0u8, 1, 2, 3][..]));
        assert_eq!(g.slice(0, 150, 2), Some(&[50u8, 51][..]));
        assert_eq!(g.slice(0, 90, 4), None, "before segment");
        assert_eq!(g.slice(0, 198, 4), None, "runs past segment end");
        assert_eq!(g.slice(1, 100, 4), None, "unknown file");
    }
}
