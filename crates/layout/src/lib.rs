//! # dv-layout
//!
//! The virtualization compiler — the paper's core contribution (§4).
//! Given a resolved [`dv_descriptor::DatasetModel`] and a bound query,
//! it computes the set of **Aligned File Chunks (AFCs)**:
//!
//! ```text
//! { num_rows, {File_1, Offset_1, Num_Bytes_1}, ..., {File_m, Offset_m, Num_Bytes_m} }
//! ```
//!
//! and the decode schedule that materializes `num_rows` table rows by
//! reading the *m* chunks in lock-step. The two-phase structure follows
//! the paper:
//!
//! * **Phase 1 — [`plan::CompiledDataset::compile`]** runs once per
//!   descriptor (no query): it validates the model, loads `CHUNKED`
//!   index files, builds R-trees over chunk MBRs, and freezes
//!   per-file layout programs. This is the "generated index and
//!   extraction function" — in this Rust reproduction, a specialized
//!   plan object rather than emitted C++ source (see DESIGN.md;
//!   [`codegen`] renders the equivalent source for inspection).
//! * **Phase 2 — [`plan::CompiledDataset::plan_query`]** runs per
//!   query: range analysis prunes files, outer loop iterations and
//!   chunks; surviving segments are grouped (`Find_File_Groups`) and
//!   aligned (`Process_File_Groups`) into AFCs.
//!
//! [`extract::Extractor`] then executes AFCs against the filesystem,
//! producing working rows for the filtering service. By default reads
//! flow through the [`io`] scheduler, which coalesces AFC byte runs
//! into large sequential reads, prefetches the next working set on a
//! background thread, and serves repeated ranges from a cross-query
//! segment cache.

pub mod afc;
pub mod codegen;
pub mod cost;
pub mod extract;
pub mod groups;
pub mod io;
pub mod morsel;
pub mod plan;
pub mod prune;
pub mod segment;

pub use afc::{Afc, AfcEntry, ImplicitValue};
pub use cost::{
    afc_group_bound, CostBound, CostParams, CostReport, CostViolation, RuntimeCounters,
};
pub use extract::{ExtractScratch, Extractor, SharedHandles};
pub use io::{IoOptions, IoScheduler, IoSnapshot, IoStats, SegmentCache};
pub use morsel::{adaptive_morsel_bytes, Morsel, MorselPlan, MORSELS_PER_THREAD};
pub use plan::{AggPrep, Certificate, CompiledDataset, FileIssue, NodePlan, QueryPlan, QueryPrep};
pub use prune::{PruneCertificate, PruneVerdict};
pub use segment::{InnerSig, Segment};
