//! Segment enumeration: flattening a file's loop nest into contiguous
//! byte runs.
//!
//! A **segment** is the unit the aligner works with: a contiguous run
//! of `rows` fixed-width records inside one file, labelled with
//!
//! * the values of the outer loop variables that were peeled off to
//!   reach it (`coords`, e.g. `TIME = 42`), and
//! * an *inner signature* describing what one row means — an innermost
//!   loop (`GRID` over `201..=300`), a single record, or a chunk from a
//!   `CHUNKED` index.
//!
//! Enumeration clips outer loops against the query's attribute ranges
//! (a `LOOP TIME` iteration whose value cannot satisfy the query is
//! skipped by adding the body size to the running offset — no I/O, no
//! further recursion) and prunes chunks through the R-tree built at
//! compile time.

use std::collections::HashMap;
use std::sync::Arc;

use dv_descriptor::{FileModel, ResolvedItem};
use dv_index::{ChunkIndexEntry, RTree, Rect};
use dv_types::{DvError, IntervalSet, Result};

/// Inner structure of one segment row.
#[derive(Debug, Clone, PartialEq)]
pub enum InnerSig {
    /// Rows correspond to an innermost loop: row `k` carries
    /// `var = lo + k*step`; the full (unclipped) loop has
    /// `hi` as its last value. Alignment requires identical signatures.
    Loop { var: String, lo: i64, hi: i64, step: i64 },
    /// A single record outside any innermost loop.
    Record,
    /// Rows of one variable-length chunk (row values are data, not
    /// affine; no inner clipping possible).
    Chunk,
}

/// A contiguous run of fixed-width records in one file.
#[derive(Debug, Clone)]
pub struct Segment {
    /// File id in the dataset model.
    pub file: usize,
    /// Outer loop variable values, sorted by name.
    pub coords: Vec<(String, i64)>,
    /// Inner row structure.
    pub inner: InnerSig,
    /// Number of records.
    pub rows: u64,
    /// Attribute names of one record, in byte order (shared — segments
    /// of the same layout item alias one allocation).
    pub attrs: Arc<Vec<String>>,
    /// Byte offset of record 0 in the file.
    pub offset: u64,
    /// Bytes per record.
    pub stride: u64,
}

impl Segment {
    /// The join/alignment key: coords plus inner signature must match
    /// for two segments to belong to the same aligned file chunk.
    pub fn sig(&self) -> &InnerSig {
        &self.inner
    }
}

/// A `CHUNKED` index loaded at compile time: entries plus an R-tree
/// over their bounding boxes, and the indexed attribute names in bound
/// order.
#[derive(Debug)]
pub struct LoadedChunkIndex {
    /// Attribute names corresponding to each bounds dimension.
    pub attrs: Vec<String>,
    /// All chunk entries, in file order.
    pub entries: Vec<ChunkIndexEntry>,
    /// R-tree over entry MBRs; payload is the entry ordinal.
    pub tree: RTree<usize>,
}

impl LoadedChunkIndex {
    /// Build from raw entries.
    pub fn new(attrs: Vec<String>, entries: Vec<ChunkIndexEntry>) -> LoadedChunkIndex {
        let dims = attrs.len();
        let rects: Vec<(Rect, usize)> =
            entries.iter().enumerate().map(|(i, e)| (e.rect(), i)).collect();
        let tree = RTree::bulk_load(dims, rects);
        LoadedChunkIndex { attrs, entries, tree }
    }

    /// Ordinals of chunks that can satisfy `ranges`, in file order.
    /// Uses the R-tree with the hull box of each attribute's interval
    /// set, then refines with exact interval overlap.
    pub fn matching_chunks(&self, ranges: &HashMap<String, IntervalSet>) -> Vec<usize> {
        let mut lo = Vec::with_capacity(self.attrs.len());
        let mut hi = Vec::with_capacity(self.attrs.len());
        for a in &self.attrs {
            match ranges.get(a).and_then(|s| s.bounds()) {
                Some((l, h)) => {
                    lo.push(l);
                    hi.push(h);
                }
                None if ranges.get(a).map(|s| s.is_empty()).unwrap_or(false) => {
                    // Empty constraint: nothing matches.
                    return Vec::new();
                }
                None => {
                    lo.push(f64::NEG_INFINITY);
                    hi.push(f64::INFINITY);
                }
            }
        }
        let query = Rect::new(lo, hi);
        let mut hits: Vec<usize> = Vec::new();
        self.tree.query(&query, |_, &ord| {
            let e = &self.entries[ord];
            let exact = self.attrs.iter().enumerate().all(|(d, a)| match ranges.get(a) {
                Some(set) => set.overlaps_closed(e.bounds[d].0, e.bounds[d].1),
                None => true,
            });
            if exact {
                hits.push(ord);
            }
        });
        hits.sort_unstable();
        hits
    }
}

/// Enumerate the segments of `file` that can contribute to a query
/// with the given per-attribute `ranges` (keys are upper-cased
/// attribute/variable names; missing keys mean unconstrained).
///
/// `chunk_index` must be provided for `CHUNKED` files (compile phase
/// loads it); `attr_sizes` gives the byte width of every attribute
/// appearing in layouts.
pub fn enumerate_segments(
    file: &FileModel,
    attr_sizes: &HashMap<String, usize>,
    ranges: &HashMap<String, IntervalSet>,
    chunk_index: Option<&LoadedChunkIndex>,
) -> Result<Vec<Segment>> {
    let mut out = Vec::new();
    let mut coords: Vec<(String, i64)> = Vec::new();
    walk(file, &file.layout, attr_sizes, ranges, chunk_index, &mut 0u64, &mut coords, &mut out)?;
    Ok(out)
}

fn record_size(attrs: &[String], attr_sizes: &HashMap<String, usize>) -> Result<u64> {
    let mut total = 0u64;
    for a in attrs {
        total += *attr_sizes.get(a).ok_or_else(|| {
            DvError::DescriptorSemantic(format!("attribute `{a}` has no declared size"))
        })? as u64;
    }
    Ok(total)
}

fn items_size(items: &[ResolvedItem], attr_sizes: &HashMap<String, usize>) -> Result<u64> {
    dv_descriptor::model::items_byte_size(items, attr_sizes).ok_or_else(|| {
        DvError::DescriptorSemantic("CHUNKED layout nested under a loop has no static size".into())
    })
}

#[allow(clippy::too_many_arguments)]
fn walk(
    file: &FileModel,
    items: &[ResolvedItem],
    attr_sizes: &HashMap<String, usize>,
    ranges: &HashMap<String, IntervalSet>,
    chunk_index: Option<&LoadedChunkIndex>,
    offset: &mut u64,
    coords: &mut Vec<(String, i64)>,
    out: &mut Vec<Segment>,
) -> Result<()> {
    for item in items {
        match item {
            ResolvedItem::Attrs(attrs) => {
                let stride = record_size(attrs, attr_sizes)?;
                out.push(Segment {
                    file: file.id,
                    coords: sorted(coords),
                    inner: InnerSig::Record,
                    rows: 1,
                    attrs: Arc::new(attrs.clone()),
                    offset: *offset,
                    stride,
                });
                *offset += stride;
            }
            ResolvedItem::Loop { var, lo, hi, step, body } => {
                let iters = ResolvedItem::loop_iterations(*lo, *hi, *step);
                // Innermost loop over a single record: one segment.
                if let [ResolvedItem::Attrs(attrs)] = body.as_slice() {
                    let stride = record_size(attrs, attr_sizes)?;
                    out.push(Segment {
                        file: file.id,
                        coords: sorted(coords),
                        inner: InnerSig::Loop { var: var.clone(), lo: *lo, hi: *hi, step: *step },
                        rows: iters,
                        attrs: Arc::new(attrs.clone()),
                        offset: *offset,
                        stride,
                    });
                    *offset += iters * stride;
                    continue;
                }
                // Structured body: peel each iteration, pruning by the
                // query range for this variable when one exists.
                let body_size = items_size(body, attr_sizes)?;
                let constraint = ranges.get(var);
                let mut v = *lo;
                while v <= *hi {
                    let accepted = constraint.map(|s| s.contains(v as f64)).unwrap_or(true);
                    if accepted {
                        coords.push((var.clone(), v));
                        walk(file, body, attr_sizes, ranges, chunk_index, offset, coords, out)?;
                        coords.pop();
                    } else {
                        *offset += body_size;
                    }
                    v += *step;
                }
            }
            ResolvedItem::Chunked { attrs, .. } => {
                let index = chunk_index.ok_or_else(|| {
                    DvError::Runtime(format!(
                        "file `{}` has a CHUNKED layout but its index was not loaded",
                        file.rel_path
                    ))
                })?;
                let stride = record_size(attrs, attr_sizes)?;
                for ord in index.matching_chunks(ranges) {
                    let e = &index.entries[ord];
                    let mut c = sorted(coords);
                    c.push(("__CHUNK".to_string(), ord as i64));
                    out.push(Segment {
                        file: file.id,
                        coords: c,
                        inner: InnerSig::Chunk,
                        rows: e.rows,
                        attrs: Arc::new(attrs.clone()),
                        offset: e.offset,
                        stride,
                    });
                }
            }
        }
    }
    Ok(())
}

fn sorted(coords: &[(String, i64)]) -> Vec<(String, i64)> {
    let mut c = coords.to_vec();
    c.sort();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_descriptor::compile;
    use dv_types::Interval;

    const DESC: &str = r#"
[IPARS]
REL = short int
TIME = int
X = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = n0/d

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET coords DATASET vars }
  DATASET "coords" {
    DATASPACE { LOOP GRID 1:10:1 { X } }
    DATA { DIR[0]/COORDS }
  }
  DATASET "vars" {
    DATASPACE {
      LOOP TIME 1:20:1 {
        LOOP GRID 1:10:1 { SOIL SGAS }
      }
    }
    DATA { DIR[0]/DATA$REL REL = 0:1:1 }
  }
}
"#;

    fn ranges(pairs: &[(&str, IntervalSet)]) -> HashMap<String, IntervalSet> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn coords_file_single_segment() {
        let m = compile(DESC).unwrap();
        let coords = m.files.iter().find(|f| f.dataset == "coords").unwrap();
        let segs = enumerate_segments(coords, &m.attr_sizes, &HashMap::new(), None).unwrap();
        assert_eq!(segs.len(), 1);
        let s = &segs[0];
        assert_eq!(s.rows, 10);
        assert_eq!(s.stride, 4);
        assert_eq!(s.offset, 0);
        assert!(s.coords.is_empty());
        assert_eq!(s.inner, InnerSig::Loop { var: "GRID".into(), lo: 1, hi: 10, step: 1 });
    }

    #[test]
    fn data_file_segment_per_time() {
        let m = compile(DESC).unwrap();
        let data = m.files.iter().find(|f| f.rel_path == "d/DATA0").unwrap();
        let segs = enumerate_segments(data, &m.attr_sizes, &HashMap::new(), None).unwrap();
        assert_eq!(segs.len(), 20);
        // Offsets advance by 10 records × 8 bytes.
        assert_eq!(segs[0].offset, 0);
        assert_eq!(segs[1].offset, 80);
        assert_eq!(segs[0].coords, vec![("TIME".to_string(), 1)]);
        assert_eq!(segs[19].coords, vec![("TIME".to_string(), 20)]);
        assert_eq!(*segs[0].attrs, vec!["SOIL", "SGAS"]);
    }

    #[test]
    fn outer_loop_pruning_preserves_offsets() {
        let m = compile(DESC).unwrap();
        let data = m.files.iter().find(|f| f.rel_path == "d/DATA0").unwrap();
        let r = ranges(&[("TIME", IntervalSet::single(Interval::closed(5.0, 7.0)))]);
        let segs = enumerate_segments(data, &m.attr_sizes, &r, None).unwrap();
        assert_eq!(segs.len(), 3);
        // TIME=5 is the 5th chunk (index 4): offset 4 × 80.
        assert_eq!(segs[0].coords, vec![("TIME".to_string(), 5)]);
        assert_eq!(segs[0].offset, 320);
        assert_eq!(segs[2].offset, 480);
    }

    #[test]
    fn empty_constraint_prunes_everything() {
        let m = compile(DESC).unwrap();
        let data = m.files.iter().find(|f| f.rel_path == "d/DATA1").unwrap();
        let r = ranges(&[("TIME", IntervalSet::empty())]);
        let segs = enumerate_segments(data, &m.attr_sizes, &r, None).unwrap();
        assert!(segs.is_empty());
    }

    #[test]
    fn point_constraints_from_in_list() {
        let m = compile(DESC).unwrap();
        let data = m.files.iter().find(|f| f.rel_path == "d/DATA0").unwrap();
        let r = ranges(&[("TIME", IntervalSet::points(&[3.0, 17.0]))]);
        let segs = enumerate_segments(data, &m.attr_sizes, &r, None).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].coords, vec![("TIME".to_string(), 3)]);
        assert_eq!(segs[1].coords, vec![("TIME".to_string(), 17)]);
    }

    #[test]
    fn chunked_file_uses_index() {
        let idx = LoadedChunkIndex::new(
            vec!["X".into()],
            vec![
                ChunkIndexEntry { bounds: vec![(0.0, 9.0)], offset: 0, rows: 10 },
                ChunkIndexEntry { bounds: vec![(10.0, 19.0)], offset: 80, rows: 10 },
                ChunkIndexEntry { bounds: vec![(20.0, 29.0)], offset: 160, rows: 4 },
            ],
        );
        let text = r#"
[T]
X = float
S1 = float

[TitanData]
DatasetDescription = T
DIR[0] = n0/t

DATASET "TitanData" {
  DATATYPE { T }
  DATAINDEX { X }
  DATA { DATASET c }
  DATASET "c" {
    DATASPACE { CHUNKED INDEXFILE "DIR[0]/t.idx" { X S1 } }
    DATA { DIR[0]/t.dat }
  }
}
"#;
        let m = compile(text).unwrap();
        let f = &m.files[0];
        assert!(f.is_chunked());
        let r = ranges(&[("X", IntervalSet::single(Interval::closed(12.0, 25.0)))]);
        let segs = enumerate_segments(f, &m.attr_sizes, &r, Some(&idx)).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].offset, 80);
        assert_eq!(segs[0].rows, 10);
        assert_eq!(segs[1].offset, 160);
        assert_eq!(segs[1].rows, 4);
        assert_eq!(segs[0].coords, vec![("__CHUNK".to_string(), 1)]);

        // Missing index is an error.
        assert!(enumerate_segments(f, &m.attr_sizes, &r, None).is_err());
    }

    #[test]
    fn mixed_record_and_loop_body() {
        let text = r#"
[S]
A = int
B = int

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S HDR = long int }
  DATASET "leaf" {
    DATASPACE {
      HDR
      LOOP T 1:3:1 {
        LOOP G 1:5:1 { A }
        LOOP G 1:5:1 { B }
      }
    }
    DATA { DIR[0]/f }
  }
  DATA { DATASET leaf }
}
"#;
        let m = compile(text).unwrap();
        let segs = enumerate_segments(&m.files[0], &m.attr_sizes, &HashMap::new(), None).unwrap();
        // 1 header record + 3 time-steps × 2 arrays.
        assert_eq!(segs.len(), 7);
        assert_eq!(segs[0].inner, InnerSig::Record);
        assert_eq!(segs[0].stride, 8);
        // First A-array starts after the 8-byte header.
        assert_eq!(segs[1].offset, 8);
        assert_eq!(*segs[1].attrs, vec!["A"]);
        // B-array of the same time-step follows 5×4 bytes later.
        assert_eq!(segs[2].offset, 28);
        assert_eq!(*segs[2].attrs, vec!["B"]);
        assert_eq!(segs[1].coords, segs[2].coords);
        // Next time-step.
        assert_eq!(segs[3].offset, 48);
    }
}
