//! Aligned File Chunks — `Process_File_Groups` of the paper's Figure 5.
//!
//! Given one file group `{s_1, ..., s_m}` and the per-file segments
//! that survived pruning, this module joins segments into AFCs:
//! tuples of byte runs (one or more per file — array layouts contribute
//! several runs from the *same* file) whose layouts are identical and
//! whose implicit attributes are consistent. Reading `num_rows ×
//! stride_i` bytes from each run in lock-step materializes `num_rows`
//! table rows.
//!
//! The join is implemented as a hash join on the segments' common
//! coordinate variables — semantically the paper's "cartesian product
//! between S_1..S_m, discard inconsistent combinations", without the
//! exponential enumeration.

use std::collections::HashMap;
use std::sync::Arc;

use dv_descriptor::{DatasetModel, FileModel};
use dv_types::{DataType, DvError, IntervalSet, Result, Value};

use crate::segment::{InnerSig, Segment};

/// How a working-row position is filled without reading bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum ImplicitValue {
    /// Constant over the whole AFC (file-name or outer-loop implied).
    Const(Value),
    /// Row `k` carries `start + k*step` (inner-loop implied), encoded
    /// with the attribute's schema type.
    Affine { start: i64, step: i64, dtype: DataType },
}

/// One byte run of an AFC.
#[derive(Debug, Clone, PartialEq)]
pub struct AfcEntry {
    /// File id in the dataset model.
    pub file: usize,
    /// Byte offset of row 0.
    pub offset: u64,
    /// Bytes per row.
    pub stride: u64,
}

/// A stored field decoded from an entry's bytes into a working row.
#[derive(Debug, Clone, PartialEq)]
pub struct AfcField {
    /// Index into [`Afc::entries`].
    pub entry: usize,
    /// Byte offset of the field within one row's stride.
    pub byte_off: usize,
    /// Scalar type to decode.
    pub dtype: DataType,
    /// Destination position in the working row.
    pub working_pos: usize,
}

/// One aligned file chunk, fully scheduled for extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Afc {
    /// Rows materialized by this chunk.
    pub num_rows: u64,
    /// Byte runs to read in lock-step.
    pub entries: Vec<AfcEntry>,
    /// Stored-field decode schedule.
    pub fields: Vec<AfcField>,
    /// Implicit values per working position.
    pub implicits: Vec<(usize, ImplicitValue)>,
}

impl Afc {
    /// Total bytes this AFC reads from disk.
    pub fn bytes_read(&self) -> u64 {
        self.entries.iter().map(|e| self.num_rows * e.stride).sum()
    }
}

/// Query-independent description of the working row: which schema
/// attributes the execution materializes, in schema order.
#[derive(Debug, Clone)]
pub struct WorkingSet {
    /// Schema attribute indices, ascending.
    pub attrs: Vec<usize>,
    /// Attribute names matching `attrs`.
    pub names: Vec<String>,
    /// Types matching `attrs`.
    pub dtypes: Vec<DataType>,
    /// Name → working position (hot lookup during planning).
    positions: HashMap<String, usize>,
}

impl WorkingSet {
    /// Build from schema attribute indices (sorted, deduped by the
    /// binder).
    pub fn new(model: &DatasetModel, attrs: Vec<usize>) -> WorkingSet {
        let names: Vec<String> =
            attrs.iter().map(|&i| model.schema.attr_at(i).name.clone()).collect();
        let dtypes = attrs.iter().map(|&i| model.schema.attr_at(i).dtype).collect();
        let positions = names.iter().enumerate().map(|(p, n)| (n.clone(), p)).collect();
        WorkingSet { attrs, names, dtypes, positions }
    }

    /// Working position of the attribute named `name`, if any.
    #[inline]
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.positions.get(name).copied()
    }
}

/// Join state while folding files of a group together.
struct Partial {
    coords: Vec<(String, i64)>,
    sig: InnerSig,
    /// Interned signature id (per `build_afcs` call).
    sig_id: usize,
    rows: u64,
    /// `(file, offset, stride, attrs)` runs accumulated so far.
    runs: Vec<(usize, u64, u64, Arc<Vec<String>>)>,
}

/// Build the AFCs of one file group.
///
/// * `group` — one file per attribute class (paper's `{s_1..s_m}`);
/// * `segments` — pruned segments, parallel to `group`;
/// * `working` — the row the extraction must produce;
/// * `ranges` — per-attribute constraints, for inner-loop clipping.
pub fn build_afcs(
    model: &DatasetModel,
    group: &[&FileModel],
    segments: &[&[Segment]],
    working: &WorkingSet,
    ranges: &HashMap<String, IntervalSet>,
) -> Result<Vec<Afc>> {
    assert_eq!(group.len(), segments.len());

    // Signature interning: alignment keys compare interned ids instead
    // of re-formatted strings (hot during planning).
    let mut sig_table: Vec<(InnerSig, u64)> = Vec::new();
    let mut intern = |sig: &InnerSig, rows: u64| -> usize {
        let rows_key = if matches!(sig, InnerSig::Chunk) { rows } else { 0 };
        match sig_table.iter().position(|(s, r)| s == sig && *r == rows_key) {
            Some(i) => i,
            None => {
                sig_table.push((sig.clone(), rows_key));
                sig_table.len() - 1
            }
        }
    };

    // Bucket each file's segments by (coords, sig): array layouts put
    // several attribute runs of the same logical chunk in one bucket.
    let mut per_file_buckets: Vec<Vec<Partial>> = Vec::with_capacity(group.len());
    for (&f, &segs) in group.iter().zip(segments) {
        // Projection push-down: runs holding nothing the query needs
        // are never read. Exception: when *no* run of this file is
        // needed (the file participates only to define cardinality,
        // e.g. `SELECT REL, TIME`), keep all runs for structure; their
        // field-less entries are dropped after alignment.
        let any_needed =
            segs.iter().any(|s| s.attrs.iter().any(|a| working.position_of(a).is_some()));
        let mut buckets: Vec<Partial> = Vec::new();
        let mut lookup: HashMap<(Vec<(String, i64)>, usize), usize> = HashMap::new();
        for s in segs {
            let has_needed = s.attrs.iter().any(|a| working.position_of(a).is_some());
            if any_needed && !has_needed {
                continue;
            }
            let key = (s.coords.clone(), intern(&s.inner, s.rows));
            match lookup.get(&key) {
                Some(&i) => {
                    if buckets[i].rows != s.rows || buckets[i].sig != s.inner {
                        return Err(DvError::Alignment(format!(
                            "file `{}` has inconsistent runs at coords {:?}",
                            f.rel_path, s.coords
                        )));
                    }
                    buckets[i].runs.push((s.file, s.offset, s.stride, s.attrs.clone()));
                }
                None => {
                    let sig_id = key.1;
                    lookup.insert(key, buckets.len());
                    buckets.push(Partial {
                        coords: s.coords.clone(),
                        sig: s.inner.clone(),
                        sig_id,
                        rows: s.rows,
                        runs: vec![(s.file, s.offset, s.stride, s.attrs.clone())],
                    });
                }
            }
        }
        per_file_buckets.push(buckets);
    }

    // Some file contributed nothing (either pruned away or carried no
    // needed attrs): the group yields no rows.
    if per_file_buckets.iter().any(|b| b.is_empty()) {
        return Ok(Vec::new());
    }

    // Fold a hash join over the files.
    let mut acc: Vec<Partial> = per_file_buckets.remove(0);
    for buckets in per_file_buckets {
        // Common coordinate variables between the accumulated side and
        // this file (uniform within a file, so compute from the first
        // bucket of each side).
        let acc_vars: Vec<&String> = acc[0].coords.iter().map(|(v, _)| v).collect();
        let common: Vec<String> = buckets[0]
            .coords
            .iter()
            .map(|(v, _)| v.clone())
            .filter(|v| acc_vars.contains(&v))
            .collect();

        let mut table: HashMap<(Vec<i64>, usize, u64), Vec<&Partial>> = HashMap::new();
        for b in &buckets {
            let key = (project(&b.coords, &common), b.sig_id, b.rows);
            table.entry(key).or_default().push(b);
        }
        let mut next: Vec<Partial> = Vec::with_capacity(acc.len());
        for mut p in acc {
            let key = (project(&p.coords, &common), p.sig_id, p.rows);
            let Some(matches) = table.get(&key) else { continue };
            // 1:1 alignment is the overwhelmingly common case: extend
            // the accumulated partial in place instead of re-cloning
            // its runs at every join step. The last match consumes the
            // partial so emission keeps ascending file order.
            let (one, rest) = matches.split_last().expect("non-empty match list");
            for m in rest {
                let mut coords = p.coords.clone();
                merge_coords(&mut coords, &m.coords);
                let mut runs = p.runs.clone();
                runs.extend(m.runs.iter().cloned());
                next.push(Partial {
                    coords,
                    sig: p.sig.clone(),
                    sig_id: p.sig_id,
                    rows: p.rows,
                    runs,
                });
            }
            merge_coords(&mut p.coords, &one.coords);
            p.runs.extend(one.runs.iter().cloned());
            next.push(p);
        }
        if next.is_empty() {
            // Every side had segments but nothing aligned: the layouts
            // of the group are structurally incompatible.
            let names: Vec<&str> = group.iter().map(|f| f.rel_path.as_str()).collect();
            return Err(DvError::Alignment(format!(
                "no aligned file chunks between {{{}}}: layouts or implicit attributes do \
                 not match",
                names.join(", ")
            )));
        }
        acc = next;
    }

    // Materialize AFCs, applying inner-loop clipping. All partials of
    // a uniform group share one *template* (same files, strides,
    // attribute runs and signature — only offsets and coordinate
    // values differ), mirroring the paper's compiled extraction
    // functions: structure is computed once, per-chunk work is just
    // offset/value arithmetic. Non-uniform partials (mixed chunk
    // shapes) fall back to the general path.
    let mut out = Vec::with_capacity(acc.len());
    let template = GroupTemplate::build(model, group, &acc[0], working, ranges)?;
    for p in acc {
        if !template.instantiate(&p, working, &mut out) {
            assemble(model, group, p, working, ranges, &mut out)?;
        }
    }
    Ok(out)
}

/// Precomputed per-group AFC schedule (see [`build_afcs`]).
struct GroupTemplate {
    /// `(file, stride, attrs-ptr)` of every run, in join order;
    /// `keep` marks runs that decode at least one field.
    runs: Vec<(usize, u64, Arc<Vec<String>>, bool)>,
    sig: InnerSig,
    rows: u64,
    fields: Vec<AfcField>,
    /// Constants from file-binding variables (identical across the
    /// group's partials).
    env_consts: Vec<(usize, Value)>,
    /// Constants from outer-loop coords: `(working position, index
    /// into partial.coords, dtype)`.
    coord_consts: Vec<(usize, usize, DataType)>,
    /// Coordinate variable names, in partial order (uniformity check).
    coord_vars: Vec<String>,
    /// Slow-path flag: a coord var shadows a binding var somewhere.
    coords_overlap_env: bool,
    /// Affine inner implicit `(pos, step, dtype)`; start depends on
    /// clipping.
    affine: Option<(usize, i64, DataType)>,
    /// Pre-clipped inner runs: `(start_k, rows, affine_start)`; `None`
    /// when the whole chunk passes unclipped.
    clip_runs: Option<Vec<(u64, u64, i64)>>,
}

impl GroupTemplate {
    fn build(
        model: &DatasetModel,
        group: &[&FileModel],
        first: &Partial,
        working: &WorkingSet,
        ranges: &HashMap<String, IntervalSet>,
    ) -> Result<GroupTemplate> {
        // Run the general assembler once to validate coverage and
        // consistency; then lift its structure into the template.
        let mut probe = Vec::new();
        assemble(model, group, clone_partial(first), working, ranges, &mut probe)?;

        // Fields and entry-keeping pattern, recomputed structurally.
        let mut fields: Vec<AfcField> = Vec::new();
        let mut covered = vec![false; working.attrs.len()];
        let mut runs: Vec<(usize, u64, Arc<Vec<String>>, bool)> =
            Vec::with_capacity(first.runs.len());
        let mut entry_idx = 0usize;
        for (file, _off, stride, attrs) in &first.runs {
            let before = fields.len();
            let mut byte_off = 0usize;
            for a in attrs.iter() {
                let size = *model.attr_sizes.get(a).ok_or_else(|| {
                    DvError::DescriptorSemantic(format!("attribute `{a}` has no declared size"))
                })?;
                if let Some(pos) = working.position_of(a) {
                    if !covered[pos] {
                        covered[pos] = true;
                        fields.push(AfcField {
                            entry: entry_idx,
                            byte_off,
                            dtype: working.dtypes[pos],
                            working_pos: pos,
                        });
                    }
                }
                byte_off += size;
            }
            let keep = fields.len() > before;
            if keep {
                entry_idx += 1;
            }
            runs.push((*file, *stride, Arc::clone(attrs), keep));
        }

        // Implicit constants: env vars (fixed) and coords (per
        // partial).
        let mut env_consts = Vec::new();
        for f in group {
            for (var, val) in &f.env {
                if let Some(pos) = working.position_of(var) {
                    if !covered[pos] {
                        covered[pos] = true;
                        env_consts.push((pos, Value::from_i64(working.dtypes[pos], *val)));
                    }
                }
            }
        }
        let mut coord_consts = Vec::new();
        let coord_vars: Vec<String> = first.coords.iter().map(|(v, _)| v.clone()).collect();
        // A coordinate variable that is also a binding variable of some
        // group file needs the per-partial conflict check of the slow
        // path (pathological descriptors only).
        let coords_overlap_env =
            first.coords.iter().any(|(v, _)| group.iter().any(|f| f.env.contains_key(v)));
        for (ci, (var, _)) in first.coords.iter().enumerate() {
            if let Some(pos) = working.position_of(var) {
                if !covered[pos] {
                    covered[pos] = true;
                    coord_consts.push((pos, ci, working.dtypes[pos]));
                }
            }
        }
        let mut affine = None;
        if let InnerSig::Loop { var, step, .. } = &first.sig {
            if let Some(pos) = working.position_of(var) {
                if !covered[pos] {
                    covered[pos] = true;
                    affine = Some((pos, *step, working.dtypes[pos]));
                }
            }
        }

        // Pre-clipped inner runs (identical for every partial of the
        // group: same signature, same ranges).
        let clip_runs = match &first.sig {
            InnerSig::Loop { var, lo, step, .. } => ranges.get(var).map(|set| {
                let mut out = Vec::new();
                let mut k = 0u64;
                while k < first.rows {
                    while k < first.rows && !set.contains((lo + k as i64 * step) as f64) {
                        k += 1;
                    }
                    if k >= first.rows {
                        break;
                    }
                    let start_k = k;
                    while k < first.rows && set.contains((lo + k as i64 * step) as f64) {
                        k += 1;
                    }
                    out.push((start_k, k - start_k, lo + start_k as i64 * step));
                }
                out
            }),
            _ => None,
        };

        Ok(GroupTemplate {
            runs,
            sig: first.sig.clone(),
            rows: first.rows,
            fields,
            env_consts,
            coord_consts,
            coord_vars,
            coords_overlap_env,
            affine,
            clip_runs,
        })
    }

    /// Fast-path materialization; returns false when `p` deviates from
    /// the template structure (caller falls back to [`assemble`]).
    fn instantiate(&self, p: &Partial, working: &WorkingSet, out: &mut Vec<Afc>) -> bool {
        // Uniformity checks.
        if self.coords_overlap_env
            || p.runs.len() != self.runs.len()
            || p.coords.len() != self.coord_vars.len()
        {
            return false;
        }
        let same_sig = match (&p.sig, &self.sig) {
            (InnerSig::Chunk, InnerSig::Chunk) => true, // rows may vary
            (a, b) => a == b && p.rows == self.rows,
        };
        if !same_sig {
            return false;
        }
        for ((file, _, stride, attrs), (tf, ts, ta, _)) in p.runs.iter().zip(&self.runs) {
            if file != tf || stride != ts || !Arc::ptr_eq(attrs, ta) {
                return false;
            }
        }
        for ((var, _), tv) in p.coords.iter().zip(&self.coord_vars) {
            if var != tv {
                return false;
            }
        }

        let entries: Vec<AfcEntry> = p
            .runs
            .iter()
            .zip(&self.runs)
            .filter(|(_, (.., keep))| *keep)
            .map(|((file, offset, stride, _), _)| AfcEntry {
                file: *file,
                offset: *offset,
                stride: *stride,
            })
            .collect();
        let mut implicits: Vec<(usize, ImplicitValue)> =
            Vec::with_capacity(self.env_consts.len() + self.coord_consts.len() + 1);
        for (pos, v) in &self.env_consts {
            implicits.push((*pos, ImplicitValue::Const(*v)));
        }
        for (pos, ci, dtype) in &self.coord_consts {
            implicits.push((*pos, ImplicitValue::Const(Value::from_i64(*dtype, p.coords[*ci].1))));
        }
        let _ = working;

        match &self.clip_runs {
            None => {
                if let Some((pos, step, dtype)) = self.affine {
                    let start = match &p.sig {
                        InnerSig::Loop { lo, .. } => *lo,
                        _ => 0,
                    };
                    implicits.push((pos, ImplicitValue::Affine { start, step, dtype }));
                }
                out.push(Afc { num_rows: p.rows, entries, fields: self.fields.clone(), implicits });
            }
            Some(cruns) => {
                for (start_k, run_rows, affine_start) in cruns {
                    let run_entries: Vec<AfcEntry> = entries
                        .iter()
                        .map(|e| AfcEntry {
                            file: e.file,
                            offset: e.offset + start_k * e.stride,
                            stride: e.stride,
                        })
                        .collect();
                    let mut imp = implicits.clone();
                    if let Some((pos, step, dtype)) = self.affine {
                        imp.push((
                            pos,
                            ImplicitValue::Affine { start: *affine_start, step, dtype },
                        ));
                    }
                    out.push(Afc {
                        num_rows: *run_rows,
                        entries: run_entries,
                        fields: self.fields.clone(),
                        implicits: imp,
                    });
                }
            }
        }
        true
    }
}

fn clone_partial(p: &Partial) -> Partial {
    Partial {
        coords: p.coords.clone(),
        sig: p.sig.clone(),
        sig_id: p.sig_id,
        rows: p.rows,
        runs: p.runs.clone(),
    }
}

/// Merge `other`'s coordinates into `coords` (sorted, deduplicated).
fn merge_coords(coords: &mut Vec<(String, i64)>, other: &[(String, i64)]) {
    let mut changed = false;
    for (v, val) in other {
        if !coords.iter().any(|(cv, _)| cv == v) {
            coords.push((v.clone(), *val));
            changed = true;
        }
    }
    if changed {
        coords.sort();
    }
}

fn project(coords: &[(String, i64)], vars: &[String]) -> Vec<i64> {
    vars.iter()
        .map(|v| coords.iter().find(|(cv, _)| cv == v).map(|(_, val)| *val).unwrap_or(i64::MIN))
        .collect()
}

fn assemble(
    model: &DatasetModel,
    group: &[&FileModel],
    p: Partial,
    working: &WorkingSet,
    ranges: &HashMap<String, IntervalSet>,
    out: &mut Vec<Afc>,
) -> Result<()> {
    // Entries and stored-field schedule. Entries that end up decoding
    // no field (structure-only runs) are dropped — alignment already
    // used them for cardinality, so their bytes need not be read.
    let mut entries: Vec<AfcEntry> = Vec::with_capacity(p.runs.len());
    let mut fields: Vec<AfcField> = Vec::new();
    let mut covered: Vec<bool> = vec![false; working.attrs.len()];
    for (file, offset, stride, attrs) in &p.runs {
        let entry_idx = entries.len();
        let fields_before = fields.len();
        let mut byte_off = 0usize;
        for a in attrs.iter() {
            let size = *model.attr_sizes.get(a).ok_or_else(|| {
                DvError::DescriptorSemantic(format!("attribute `{a}` has no declared size"))
            })?;
            if let Some(pos) = working.position_of(a) {
                if !covered[pos] {
                    covered[pos] = true;
                    fields.push(AfcField {
                        entry: entry_idx,
                        byte_off,
                        dtype: working.dtypes[pos],
                        working_pos: pos,
                    });
                }
            }
            byte_off += size;
        }
        if fields.len() > fields_before {
            entries.push(AfcEntry { file: *file, offset: *offset, stride: *stride });
        }
    }

    // Implicit constants: file-binding variables and outer-loop coords
    // that name schema attributes. Conflicting values are an alignment
    // bug (group formation should have rejected the combination).
    let mut const_map: HashMap<String, i64> = HashMap::new();
    for f in group {
        for (var, val) in &f.env {
            if let Some(prev) = const_map.insert(var.clone(), *val) {
                if prev != *val {
                    return Err(DvError::Alignment(format!(
                        "implicit attribute `{var}` is inconsistent across the group \
                         ({prev} vs {val})"
                    )));
                }
            }
        }
    }
    for (var, val) in &p.coords {
        if let Some(prev) = const_map.insert(var.clone(), *val) {
            if prev != *val {
                return Err(DvError::Alignment(format!(
                    "implicit attribute `{var}` is inconsistent ({prev} vs {val})"
                )));
            }
        }
    }

    let mut implicits: Vec<(usize, ImplicitValue)> = Vec::new();
    for (var, val) in &const_map {
        if let Some(pos) = working.position_of(var) {
            if !covered[pos] {
                covered[pos] = true;
                implicits
                    .push((pos, ImplicitValue::Const(Value::from_i64(working.dtypes[pos], *val))));
            }
        }
    }

    // Inner-loop affine implicit (e.g. TIME when the innermost loop is
    // over TIME itself).
    let mut affine: Option<(usize, i64, i64)> = None;
    if let InnerSig::Loop { var, lo, step, .. } = &p.sig {
        if let Some(pos) = working.position_of(var) {
            if !covered[pos] {
                covered[pos] = true;
                affine = Some((pos, *lo, *step));
            }
        }
    }

    // Every working attribute must now have a source.
    if let Some(missing) = covered.iter().position(|c| !c) {
        return Err(DvError::Alignment(format!(
            "attribute `{}` is needed by the query but is neither stored in nor implied by \
             the file group",
            working.names[missing]
        )));
    }

    // Inner clipping: split the chunk into runs of accepted inner
    // values when the inner variable is constrained.
    let clip = match &p.sig {
        InnerSig::Loop { var, lo, step, .. } => ranges.get(var).map(|set| (*lo, *step, set)),
        _ => None,
    };
    match clip {
        None => {
            let mut imp = implicits.clone();
            if let Some((pos, start, step)) = affine {
                imp.push((pos, ImplicitValue::Affine { start, step, dtype: working.dtypes[pos] }));
            }
            out.push(Afc { num_rows: p.rows, entries, fields, implicits: imp });
        }
        Some((lo, step, set)) => {
            let mut k = 0u64;
            while k < p.rows {
                // Find the next accepted run [k, end).
                while k < p.rows && !set.contains((lo + k as i64 * step) as f64) {
                    k += 1;
                }
                if k >= p.rows {
                    break;
                }
                let start_k = k;
                while k < p.rows && set.contains((lo + k as i64 * step) as f64) {
                    k += 1;
                }
                let run_rows = k - start_k;
                let run_entries: Vec<AfcEntry> = entries
                    .iter()
                    .map(|e| AfcEntry {
                        file: e.file,
                        offset: e.offset + start_k * e.stride,
                        stride: e.stride,
                    })
                    .collect();
                let mut imp = implicits.clone();
                if let Some((pos, a_lo, a_step)) = affine {
                    imp.push((
                        pos,
                        ImplicitValue::Affine {
                            start: a_lo + start_k as i64 * a_step,
                            step: a_step,
                            dtype: working.dtypes[pos],
                        },
                    ));
                }
                out.push(Afc {
                    num_rows: run_rows,
                    entries: run_entries,
                    fields: fields.clone(),
                    implicits: imp,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::enumerate_segments;
    use dv_descriptor::compile;
    use dv_types::Interval;

    const DESC: &str = r#"
[IPARS]
REL = short int
TIME = int
X = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = n0/d

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET coords DATASET vars }
  DATASET "coords" {
    DATASPACE { LOOP GRID 1:10:1 { X } }
    DATA { DIR[0]/COORDS }
  }
  DATASET "vars" {
    DATASPACE {
      LOOP TIME 1:20:1 {
        LOOP GRID 1:10:1 { SOIL SGAS }
      }
    }
    DATA { DIR[0]/DATA$REL REL = 0:1:1 }
  }
}
"#;

    fn setup(
        ranges: &HashMap<String, IntervalSet>,
        working_attrs: Vec<usize>,
    ) -> (dv_descriptor::DatasetModel, Vec<Afc>) {
        let m = compile(DESC).unwrap();
        let coords = m.files.iter().find(|f| f.dataset == "coords").unwrap();
        let data0 = m.files.iter().find(|f| f.rel_path == "d/DATA0").unwrap();
        let group = vec![coords, data0];
        let segs: Vec<Vec<Segment>> = group
            .iter()
            .map(|f| enumerate_segments(f, &m.attr_sizes, ranges, None).unwrap())
            .collect();
        let seg_refs: Vec<&[Segment]> = segs.iter().map(|s| s.as_slice()).collect();
        let working = WorkingSet::new(&m, working_attrs);
        let afcs = build_afcs(&m, &group, &seg_refs, &working, ranges).unwrap();
        (m.clone(), afcs)
    }

    #[test]
    fn full_scan_produces_one_afc_per_time() {
        // Working set: all five attributes.
        let ranges = HashMap::new();
        let (_m, afcs) = setup(&ranges, vec![0, 1, 2, 3, 4]);
        assert_eq!(afcs.len(), 20);
        let a = &afcs[0];
        assert_eq!(a.num_rows, 10);
        // Two entries: COORDS X-run and DATA0 SOIL/SGAS-run.
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].stride + a.entries[1].stride, 4 + 8);
        // Stored fields: X, SOIL, SGAS.
        assert_eq!(a.fields.len(), 3);
        // Implicit: REL const (env), TIME const (coord).
        assert_eq!(a.implicits.len(), 2);
        assert_eq!(a.bytes_read(), 10 * 12);
    }

    #[test]
    fn time_range_prunes_afcs() {
        let mut ranges = HashMap::new();
        ranges.insert("TIME".to_string(), IntervalSet::single(Interval::closed(5.0, 7.0)));
        let (_m, afcs) = setup(&ranges, vec![0, 1, 2, 3, 4]);
        assert_eq!(afcs.len(), 3);
        // The COORDS entry repeats at offset 0 in each AFC; the data
        // entry advances.
        assert_eq!(afcs[0].entries[0].offset, 0);
        assert_eq!(afcs[0].entries[1].offset, 4 * 80);
    }

    #[test]
    fn inner_clipping_splits_runs() {
        // GRID is not a schema attribute, but clip via an artificial
        // constraint to exercise run splitting.
        let mut ranges = HashMap::new();
        ranges.insert("GRID".to_string(), IntervalSet::points(&[2.0, 3.0, 7.0]));
        ranges.insert("TIME".to_string(), IntervalSet::points(&[1.0]));
        let (_m, afcs) = setup(&ranges, vec![0, 1, 2, 3, 4]);
        // TIME=1 only; GRID runs {2,3} and {7}.
        assert_eq!(afcs.len(), 2);
        assert_eq!(afcs[0].num_rows, 2);
        // Run starts at k=1 (GRID=2): offsets advance one stride.
        assert_eq!(afcs[0].entries[0].offset, 4);
        assert_eq!(afcs[0].entries[1].offset, 8);
        assert_eq!(afcs[1].num_rows, 1);
        assert_eq!(afcs[1].entries[0].offset, 6 * 4);
    }

    #[test]
    fn projection_skips_unneeded_entries() {
        // Query only needs SOIL (idx 3) and TIME (idx 1): the COORDS
        // file contributes nothing and the group drops to data-only.
        let m = compile(DESC).unwrap();
        let data0 = m.files.iter().find(|f| f.rel_path == "d/DATA0").unwrap();
        let group = vec![data0];
        let ranges = HashMap::new();
        let segs: Vec<Vec<Segment>> = group
            .iter()
            .map(|f| enumerate_segments(f, &m.attr_sizes, &ranges, None).unwrap())
            .collect();
        let seg_refs: Vec<&[Segment]> = segs.iter().map(|s| s.as_slice()).collect();
        let working = WorkingSet::new(&m, vec![1, 3]);
        let afcs = build_afcs(&m, &group, &seg_refs, &working, &ranges).unwrap();
        assert_eq!(afcs.len(), 20);
        assert_eq!(afcs[0].entries.len(), 1);
        // SOIL is at byte 0 of the 8-byte record; SGAS is skipped.
        assert_eq!(afcs[0].fields.len(), 1);
        assert_eq!(afcs[0].fields[0].byte_off, 0);
        // TIME arrives as an implicit constant.
        assert_eq!(afcs[0].implicits.len(), 1);
    }

    #[test]
    fn uncovered_attr_is_error() {
        // Working set includes X but the group has only the data file.
        let m = compile(DESC).unwrap();
        let data0 = m.files.iter().find(|f| f.rel_path == "d/DATA0").unwrap();
        let group = vec![data0];
        let ranges = HashMap::new();
        let segs: Vec<Vec<Segment>> = group
            .iter()
            .map(|f| enumerate_segments(f, &m.attr_sizes, &ranges, None).unwrap())
            .collect();
        let seg_refs: Vec<&[Segment]> = segs.iter().map(|s| s.as_slice()).collect();
        let working = WorkingSet::new(&m, vec![2, 3]); // X, SOIL
        let e = build_afcs(&m, &group, &seg_refs, &working, &ranges).unwrap_err().to_string();
        assert!(e.contains('X'), "{e}");
    }

    #[test]
    fn misaligned_layouts_rejected() {
        // A COORDS file with 11 grid points cannot align with data
        // files of 10.
        let bad = DESC.replace("LOOP GRID 1:10:1 { X }", "LOOP GRID 1:11:1 { X }");
        let m = compile(&bad).unwrap();
        let coords = m.files.iter().find(|f| f.dataset == "coords").unwrap();
        let data0 = m.files.iter().find(|f| f.rel_path == "d/DATA0").unwrap();
        let group = vec![coords, data0];
        let ranges = HashMap::new();
        let segs: Vec<Vec<Segment>> = group
            .iter()
            .map(|f| enumerate_segments(f, &m.attr_sizes, &ranges, None).unwrap())
            .collect();
        let seg_refs: Vec<&[Segment]> = segs.iter().map(|s| s.as_slice()).collect();
        let working = WorkingSet::new(&m, vec![0, 1, 2, 3, 4]);
        let e = build_afcs(&m, &group, &seg_refs, &working, &ranges).unwrap_err().to_string();
        assert!(e.contains("aligned"), "{e}");
    }

    #[test]
    fn affine_implicit_for_inner_schema_attr() {
        // A per-cell time series: the innermost loop is TIME itself.
        let text = r#"
[S]
TIME = int
V = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATASET "leaf" {
    DATASPACE { LOOP TIME 10:14:2 { V } }
    DATA { DIR[0]/series }
  }
  DATA { DATASET leaf }
}
"#;
        let m = compile(text).unwrap();
        let group = vec![&m.files[0]];
        let ranges = HashMap::new();
        let segs = [enumerate_segments(&m.files[0], &m.attr_sizes, &ranges, None).unwrap()];
        let seg_refs: Vec<&[Segment]> = segs.iter().map(|s| s.as_slice()).collect();
        let working = WorkingSet::new(&m, vec![0, 1]);
        let afcs = build_afcs(&m, &group, &seg_refs, &working, &ranges).unwrap();
        assert_eq!(afcs.len(), 1);
        assert_eq!(afcs[0].num_rows, 3);
        let (pos, imp) = &afcs[0].implicits[0];
        assert_eq!(*pos, 0);
        assert_eq!(*imp, ImplicitValue::Affine { start: 10, step: 2, dtype: DataType::Int });
    }
}
