//! Resolved dataset model — the output of descriptor compilation.
//!
//! Resolution expands every `DATA` file binding over its variable
//! ranges into concrete [`FileModel`]s. Each file carries:
//!
//! * a fully-evaluated loop-nest layout (all bounds are integers);
//! * its *implicit attribute extents* — values or ranges of attributes
//!   that are never stored in the file's bytes but are implied by the
//!   file name, directory, or loop structure (paper §4). These drive
//!   both file pruning and aligned-file-chunk consistency checks.

use std::collections::{BTreeMap, HashMap};

use dv_types::{DataType, Schema};

use crate::codec::CodecKind;
use crate::expr::Env;

/// Location of a `DIR[i]` storage entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirInfo {
    /// Cluster node id (index into [`DatasetModel::nodes`]).
    pub node: usize,
    /// Directory path on that node.
    pub path: String,
}

/// Extent of an implicit variable for one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarExtent {
    /// Single value (e.g. `REL = 2` inferred from the file name).
    Point(i64),
    /// Inclusive range with stride (e.g. `TIME` spanning `1..=500`
    /// from `LOOP TIME 1:500:1`).
    Range { lo: i64, hi: i64, step: i64 },
}

impl VarExtent {
    /// Inclusive `(lo, hi)` hull.
    pub fn hull(&self) -> (i64, i64) {
        match *self {
            VarExtent::Point(v) => (v, v),
            VarExtent::Range { lo, hi, .. } => (lo, hi),
        }
    }

    /// Merge two extents into their hull (used when a variable appears
    /// in several loops of the same file).
    pub fn merge(&self, other: &VarExtent) -> VarExtent {
        let (a_lo, a_hi) = self.hull();
        let (b_lo, b_hi) = other.hull();
        let step = match (self, other) {
            (VarExtent::Range { step, .. }, _) => *step,
            (_, VarExtent::Range { step, .. }) => *step,
            _ => 1,
        };
        VarExtent::Range { lo: a_lo.min(b_lo), hi: a_hi.max(b_hi), step }
    }
}

/// A fully-resolved layout element within one file.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedItem {
    /// Inclusive loop `var = lo, lo+step, ..., <= hi`.
    Loop { var: String, lo: i64, hi: i64, step: i64, body: Vec<ResolvedItem> },
    /// Contiguous record of attributes, one instance per enclosing
    /// iteration.
    Attrs(Vec<String>),
    /// Variable-length chunks described by an external index file.
    Chunked { index_node: usize, index_path: String, attrs: Vec<String> },
}

impl ResolvedItem {
    /// Iteration count of a loop (`0` for empty loops).
    pub fn loop_iterations(lo: i64, hi: i64, step: i64) -> u64 {
        if step <= 0 || lo > hi {
            0
        } else {
            (((hi - lo) / step) + 1) as u64
        }
    }

    /// Byte size of this item given per-attribute sizes. `Chunked`
    /// items have data-dependent size and return `None`.
    pub fn byte_size(&self, attr_sizes: &HashMap<String, usize>) -> Option<u64> {
        match self {
            ResolvedItem::Attrs(attrs) => {
                let mut total = 0u64;
                for a in attrs {
                    total += *attr_sizes.get(a)? as u64;
                }
                Some(total)
            }
            ResolvedItem::Loop { lo, hi, step, body, .. } => {
                let iters = Self::loop_iterations(*lo, *hi, *step);
                let body_size = items_byte_size(body, attr_sizes)?;
                Some(iters * body_size)
            }
            ResolvedItem::Chunked { .. } => None,
        }
    }
}

/// Total byte size of a resolved item sequence (`None` if any item is
/// data-dependent).
pub fn items_byte_size(items: &[ResolvedItem], attr_sizes: &HashMap<String, usize>) -> Option<u64> {
    let mut total = 0u64;
    for item in items {
        total += item.byte_size(attr_sizes)?;
    }
    Some(total)
}

/// One concrete data file of the dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct FileModel {
    /// Dense id within [`DatasetModel::files`].
    pub id: usize,
    /// Leaf dataset this file belongs to.
    pub dataset: String,
    /// Cluster node hosting the file.
    pub node: usize,
    /// Path of the file relative to the node's storage root.
    pub rel_path: String,
    /// Binding-variable environment that produced this file
    /// (`DIRID = 1, REL = 3`).
    pub env: Env,
    /// Resolved byte layout.
    pub layout: Vec<ResolvedItem>,
    /// Schema attributes physically stored in this file, in first
    /// appearance order.
    pub stored_attrs: Vec<String>,
    /// Implicit extents of every variable relevant to this file:
    /// binding variables (points) and loop variables (ranges). Keys
    /// include non-schema alignment variables such as `GRID`.
    pub extents: BTreeMap<String, VarExtent>,
    /// Storage codec of the physical file.
    pub codec: CodecKind,
}

impl FileModel {
    /// Expected byte size of the *logical* image from the layout
    /// (`None` when chunked). For affine codecs this is also the
    /// physical file size; for CSV/zstd the physical size is
    /// data-dependent.
    pub fn expected_size(&self, attr_sizes: &HashMap<String, usize>) -> Option<u64> {
        items_byte_size(&self.layout, attr_sizes)
    }

    /// True when the layout is a `CHUNKED` external-index layout.
    pub fn is_chunked(&self) -> bool {
        matches!(self.layout.first(), Some(ResolvedItem::Chunked { .. }))
    }
}

/// The resolved model of a whole dataset: everything the layout
/// compiler needs, with no descriptor-text processing left to do.
#[derive(Debug, Clone)]
pub struct DatasetModel {
    /// Virtual table schema.
    pub schema: Schema,
    /// Root dataset name (what queries name in `FROM`).
    pub dataset_name: String,
    /// Attributes declared in `DATAINDEX` (upper-cased).
    pub index_attrs: Vec<String>,
    /// Cluster node names; node id = position.
    pub nodes: Vec<String>,
    /// `DIR[i]` table.
    pub dirs: Vec<DirInfo>,
    /// Types of all attributes appearing in layouts: schema attributes
    /// plus auxiliary (`DATATYPE { NAME = type }`) attributes.
    pub attr_types: HashMap<String, DataType>,
    /// Sizes in bytes, derived from `attr_types`.
    pub attr_sizes: HashMap<String, usize>,
    /// Every concrete file.
    pub files: Vec<FileModel>,
}

impl DatasetModel {
    /// Files hosted on `node`.
    pub fn files_on_node(&self, node: usize) -> impl Iterator<Item = &FileModel> {
        self.files.iter().filter(move |f| f.node == node)
    }

    /// Number of cluster nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Schema attribute indices declared as indexable.
    pub fn index_attr_indices(&self) -> Vec<usize> {
        self.index_attrs.iter().filter_map(|a| self.schema.index_of(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> HashMap<String, usize> {
        [("A".to_string(), 4), ("B".to_string(), 8)].into_iter().collect()
    }

    #[test]
    fn loop_iterations_inclusive() {
        assert_eq!(ResolvedItem::loop_iterations(1, 500, 1), 500);
        assert_eq!(ResolvedItem::loop_iterations(0, 3, 1), 4);
        assert_eq!(ResolvedItem::loop_iterations(1, 10, 3), 4); // 1,4,7,10
        assert_eq!(ResolvedItem::loop_iterations(5, 4, 1), 0);
        assert_eq!(ResolvedItem::loop_iterations(1, 10, 0), 0);
    }

    #[test]
    fn byte_size_nested() {
        let item = ResolvedItem::Loop {
            var: "T".into(),
            lo: 1,
            hi: 10,
            step: 1,
            body: vec![ResolvedItem::Loop {
                var: "G".into(),
                lo: 1,
                hi: 5,
                step: 1,
                body: vec![ResolvedItem::Attrs(vec!["A".into(), "B".into()])],
            }],
        };
        assert_eq!(item.byte_size(&sizes()), Some(10 * 5 * 12));
    }

    #[test]
    fn byte_size_unknown_attr_is_none() {
        let item = ResolvedItem::Attrs(vec!["MISSING".into()]);
        assert_eq!(item.byte_size(&sizes()), None);
    }

    #[test]
    fn chunked_size_unknown() {
        let item = ResolvedItem::Chunked {
            index_node: 0,
            index_path: "i".into(),
            attrs: vec!["A".into()],
        };
        assert_eq!(item.byte_size(&sizes()), None);
    }

    #[test]
    fn extent_hull_and_merge() {
        let p = VarExtent::Point(5);
        assert_eq!(p.hull(), (5, 5));
        let r = VarExtent::Range { lo: 1, hi: 10, step: 2 };
        assert_eq!(r.hull(), (1, 10));
        assert_eq!(p.merge(&r).hull(), (1, 10));
    }
}
