//! Lexer for the meta-data description language.
//!
//! The tricky production is the *word/path* rule: file templates like
//! `DIR[$DIRID]/DATA$REL` must lex as a single token, while section
//! headers `[IPARS]` and bracketed dir references inside expressions
//! must not. A word starts with a letter or `_` and may continue
//! through bracket groups (`[0]`, `[$DIRID]` — only integers or a
//! single `$var` inside), path separators (`/word`), embedded
//! variables (`$REL`) and dots. Arithmetic characters terminate a
//! word, so `$DIRID*100` inside a loop bound lexes as `Var(DIRID)`,
//! `*`, `Int(100)`.

use dv_types::{DvError, Result, Span};

use crate::token::{Token, TokenKind};

/// Tokenize a descriptor.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer { src: input.as_bytes(), pos: 0, line: 1, column: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

fn is_word_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let start = self.pos;
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else {
                let span = Span::new(start, start);
                out.push(Token { kind: TokenKind::Eof, span, line, column });
                return Ok(out);
            };
            let kind = match c {
                b'{' => self.simple(TokenKind::LBrace),
                b'}' => self.simple(TokenKind::RBrace),
                b'[' => self.simple(TokenKind::LBracket),
                b']' => self.simple(TokenKind::RBracket),
                b'(' => self.simple(TokenKind::LParen),
                b')' => self.simple(TokenKind::RParen),
                b'=' => self.simple(TokenKind::Equals),
                b':' => self.simple(TokenKind::Colon),
                b',' => self.simple(TokenKind::Comma),
                b'+' => self.simple(TokenKind::Plus),
                b'-' => self.simple(TokenKind::Minus),
                b'*' => self.simple(TokenKind::Star),
                b'/' => self.simple(TokenKind::Slash),
                b'%' => self.simple(TokenKind::Percent),
                b'"' => self.quoted()?,
                b'$' => {
                    self.advance();
                    let name = self.plain_word()?;
                    TokenKind::Var(name)
                }
                b'0'..=b'9' => self.integer()?,
                c if is_word_start(c) => self.word_or_path()?,
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Token { kind, span: Span::new(start, self.pos), line, column });
        }
    }

    fn err(&self, message: impl Into<String>) -> DvError {
        DvError::DescriptorParse { message: message.into(), line: self.line, column: self.column }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn advance(&mut self) {
        if let Some(&c) = self.src.get(self.pos) {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
    }

    fn simple(&mut self, kind: TokenKind) -> TokenKind {
        self.advance();
        kind
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.advance(),
                // `//` line comments (possibly containing the paper's
                // `{* ... *}` remarks) and `#` line comments.
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.advance();
                    }
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.advance();
                    }
                }
                _ => return,
            }
        }
    }

    fn quoted(&mut self) -> Result<TokenKind> {
        self.advance(); // opening quote
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("non-UTF8 string literal"))?
                    .to_string();
                self.advance();
                return Ok(TokenKind::Str(text));
            }
            if c == b'\n' {
                return Err(self.err("unterminated string literal"));
            }
            self.advance();
        }
        Err(self.err("unterminated string literal"))
    }

    fn integer(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.advance();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| self.err(format!("integer literal `{text}` out of range")))
    }

    /// A bare identifier after `$` — no path syntax allowed.
    fn plain_word(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_word_char(c) {
                self.advance();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected variable name after `$`"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string())
    }

    /// Word that may extend into a path template. Returns `Word` when
    /// no path syntax was consumed, `Path` otherwise.
    fn word_or_path(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let mut is_path = false;
        // Leading identifier.
        while let Some(c) = self.peek() {
            if is_word_char(c) {
                self.advance();
            } else {
                break;
            }
        }
        loop {
            match self.peek() {
                // Bracket group: `[0]` or `[$VAR]` (dir references).
                Some(b'[') => {
                    let ok = self.try_bracket_group();
                    if !ok {
                        break;
                    }
                    is_path = true;
                }
                // Path separator followed by a word char or `$`.
                Some(b'/')
                    if self.peek_at(1).map(|c| is_word_char(c) || c == b'$').unwrap_or(false) =>
                {
                    self.advance();
                    is_path = true;
                    self.consume_name_run();
                }
                // Embedded variable: `DATA$REL`.
                Some(b'$') => {
                    self.advance();
                    is_path = true;
                    self.consume_name_run();
                }
                // Dotted file extension: `titan.idx`.
                Some(b'.') if self.peek_at(1).map(is_word_char).unwrap_or(false) => {
                    self.advance();
                    is_path = true;
                    self.consume_name_run();
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string();
        Ok(if is_path { TokenKind::Path(text) } else { TokenKind::Word(text) })
    }

    fn consume_name_run(&mut self) {
        while let Some(c) = self.peek() {
            if is_word_char(c) {
                self.advance();
            } else {
                break;
            }
        }
    }

    /// Attempt to consume `[...]` where the contents are an integer or
    /// a `$var` (the only forms allowed *inside a word*). Returns false
    /// (consuming nothing) if the bracket group doesn't match, so the
    /// bracket is left for structural tokenization.
    fn try_bracket_group(&mut self) -> bool {
        let save = (self.pos, self.line, self.column);
        self.advance(); // `[`
        match self.peek() {
            Some(b'$') => {
                self.advance();
                self.consume_name_run();
            }
            Some(c) if c.is_ascii_digit() => {
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            _ => {
                (self.pos, self.line, self.column) = save;
                return false;
            }
        }
        if self.peek() == Some(b']') {
            self.advance();
            true
        } else {
            (self.pos, self.line, self.column) = save;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as K;

    fn kinds(s: &str) -> Vec<K> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn section_header() {
        assert_eq!(
            kinds("[IPARS]"),
            vec![K::LBracket, K::Word("IPARS".into()), K::RBracket, K::Eof]
        );
    }

    #[test]
    fn schema_line_multiword_type() {
        assert_eq!(
            kinds("REL = short int"),
            vec![
                K::Word("REL".into()),
                K::Equals,
                K::Word("short".into()),
                K::Word("int".into()),
                K::Eof
            ]
        );
    }

    #[test]
    fn dir_assignment() {
        assert_eq!(
            kinds("DIR[0] = osu0/ipars"),
            vec![K::Path("DIR[0]".into()), K::Equals, K::Path("osu0/ipars".into()), K::Eof]
        );
    }

    #[test]
    fn file_template_with_vars() {
        assert_eq!(
            kinds("DIR[$DIRID]/DATA$REL REL = 0:3:1"),
            vec![
                K::Path("DIR[$DIRID]/DATA$REL".into()),
                K::Word("REL".into()),
                K::Equals,
                K::Int(0),
                K::Colon,
                K::Int(3),
                K::Colon,
                K::Int(1),
                K::Eof
            ]
        );
    }

    #[test]
    fn loop_bounds_expression() {
        assert_eq!(
            kinds("($DIRID*100+1):(($DIRID+1)*100):1"),
            vec![
                K::LParen,
                K::Var("DIRID".into()),
                K::Star,
                K::Int(100),
                K::Plus,
                K::Int(1),
                K::RParen,
                K::Colon,
                K::LParen,
                K::LParen,
                K::Var("DIRID".into()),
                K::Plus,
                K::Int(1),
                K::RParen,
                K::Star,
                K::Int(100),
                K::RParen,
                K::Colon,
                K::Int(1),
                K::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("[IPARS] // {* Dataset schema name *}\nTIME = int # trailing");
        assert_eq!(
            ks,
            vec![
                K::LBracket,
                K::Word("IPARS".into()),
                K::RBracket,
                K::Word("TIME".into()),
                K::Equals,
                K::Word("int".into()),
                K::Eof
            ]
        );
    }

    #[test]
    fn quoted_strings() {
        assert_eq!(
            kinds("DATASET \"IparsData\""),
            vec![K::Word("DATASET".into()), K::Str("IparsData".into()), K::Eof]
        );
    }

    #[test]
    fn dotted_filename() {
        assert_eq!(kinds("titan.idx"), vec![K::Path("titan.idx".into()), K::Eof]);
    }

    #[test]
    fn division_still_lexes() {
        // `/` between expressions (not path context) is a slash token.
        assert_eq!(kinds("4 / 2"), vec![K::Int(4), K::Slash, K::Int(2), K::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize("\"oops\nmore\"").is_err());
    }

    #[test]
    fn bracket_not_a_group_falls_back() {
        // `X[` with no closing integer/var is structural.
        assert_eq!(
            kinds("X[Y]"),
            vec![K::Word("X".into()), K::LBracket, K::Word("Y".into()), K::RBracket, K::Eof]
        );
    }

    #[test]
    fn bare_dollar_errors() {
        assert!(tokenize("$ 5").is_err());
    }
}
