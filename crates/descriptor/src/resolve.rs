//! Semantic resolution: [`DescriptorAst`] → [`DatasetModel`].
//!
//! This is the expensive half of descriptor compilation the paper runs
//! *once*, ahead of any query: binding-variable ranges are expanded
//! into concrete files, loop bounds are evaluated, attribute references
//! are checked, and implicit extents are computed per file.

use std::collections::{BTreeMap, HashMap, HashSet};

use dv_types::{Attribute, DataType, DvError, Result, Schema};

use crate::ast::{DataAst, DatasetAst, DescriptorAst, FileBinding, SpaceItem};
use crate::expr::Env;
use crate::model::{DatasetModel, DirInfo, FileModel, ResolvedItem, VarExtent};

/// Resolve a parsed descriptor into a dataset model.
pub fn resolve(ast: &DescriptorAst) -> Result<DatasetModel> {
    // --- Component I: schema ---
    let attrs: Vec<Attribute> =
        ast.schema.attrs.iter().map(|(n, t, _)| Attribute::new(n, *t)).collect();
    let schema = Schema::new(&ast.schema.name, attrs)?;

    // --- Component II: storage ---
    if !ast.storage.schema_name.eq_ignore_ascii_case(&schema.name) {
        return Err(DvError::DescriptorSemantic(format!(
            "storage section references schema `{}` but the schema section defines `{}`",
            ast.storage.schema_name, schema.name
        )));
    }
    let mut nodes: Vec<String> = Vec::new();
    let mut dirs: Vec<DirInfo> =
        vec![DirInfo { node: 0, path: String::new() }; ast.storage.dirs.len()];
    for d in &ast.storage.dirs {
        let node = match nodes.iter().position(|n| *n == d.node) {
            Some(i) => i,
            None => {
                nodes.push(d.node.clone());
                nodes.len() - 1
            }
        };
        dirs[d.index] = DirInfo { node, path: d.path.clone() };
    }

    // --- Component III: layout ---
    if !ast.layout.name.eq_ignore_ascii_case(&ast.storage.dataset_name) {
        return Err(DvError::DescriptorSemantic(format!(
            "layout root dataset `{}` does not match storage dataset `{}`",
            ast.layout.name, ast.storage.dataset_name
        )));
    }
    let root_schema_ref = ast.layout.schema_ref.as_deref().unwrap_or(&schema.name);
    if !root_schema_ref.eq_ignore_ascii_case(&schema.name) {
        return Err(DvError::DescriptorSemantic(format!(
            "root DATATYPE references unknown schema `{root_schema_ref}`"
        )));
    }

    // Attribute type table: schema attributes + auxiliary attributes
    // collected from every DATATYPE clause in the tree.
    let mut attr_types: HashMap<String, DataType> =
        schema.attributes().iter().map(|a| (a.name.clone(), a.dtype)).collect();
    collect_extra_attrs(&ast.layout, &mut attr_types, &schema)?;
    let attr_sizes: HashMap<String, usize> =
        attr_types.iter().map(|(k, v)| (k.clone(), v.size())).collect();

    // Index attributes may be declared at any level; collect and
    // validate against the schema.
    let mut index_attrs: Vec<String> = Vec::new();
    collect_index_attrs(&ast.layout, &mut index_attrs);
    for a in &index_attrs {
        if schema.index_of(a).is_none() {
            return Err(DvError::DescriptorSemantic(format!(
                "DATAINDEX attribute `{a}` is not in schema `{}`",
                schema.name
            )));
        }
    }

    let files = {
        let mut resolver = Resolver {
            schema: &schema,
            dirs: &dirs,
            attr_types: &attr_types,
            files: Vec::new(),
            seen_paths: HashSet::new(),
        };
        resolver.walk(&ast.layout)?;
        resolver.files
    };
    if files.is_empty() {
        return Err(DvError::DescriptorSemantic(
            "descriptor resolves to zero data files (no leaf DATASET has a DATA clause)".into(),
        ));
    }

    Ok(DatasetModel {
        schema,
        dataset_name: ast.layout.name.clone(),
        index_attrs,
        nodes,
        dirs,
        attr_types,
        attr_sizes,
        files,
    })
}

fn collect_extra_attrs(
    ds: &DatasetAst,
    out: &mut HashMap<String, DataType>,
    schema: &Schema,
) -> Result<()> {
    for (name, ty, _) in &ds.extra_attrs {
        let upper = name.to_ascii_uppercase();
        if schema.index_of(&upper).is_some() {
            return Err(DvError::DescriptorSemantic(format!(
                "auxiliary attribute `{upper}` in dataset `{}` shadows a schema attribute",
                ds.name
            )));
        }
        out.insert(upper, *ty);
    }
    for c in &ds.children {
        collect_extra_attrs(c, out, schema)?;
    }
    Ok(())
}

fn collect_index_attrs(ds: &DatasetAst, out: &mut Vec<String>) {
    for (a, _) in &ds.index_attrs {
        let upper = a.to_ascii_uppercase();
        if !out.contains(&upper) {
            out.push(upper);
        }
    }
    for c in &ds.children {
        collect_index_attrs(c, out);
    }
}

struct Resolver<'a> {
    schema: &'a Schema,
    dirs: &'a [DirInfo],
    attr_types: &'a HashMap<String, DataType>,
    files: Vec<FileModel>,
    seen_paths: HashSet<(usize, String)>,
}

impl<'a> Resolver<'a> {
    fn walk(&mut self, ds: &DatasetAst) -> Result<()> {
        // Validate DATA/children cross references on non-leaf nodes.
        if let DataAst::Nested(names) = &ds.data {
            for n in names {
                if !ds.children.iter().any(|c| c.name.eq_ignore_ascii_case(n)) {
                    return Err(DvError::DescriptorSemantic(format!(
                        "dataset `{}` lists nested dataset `{n}` that is not defined",
                        ds.name
                    )));
                }
            }
        }
        match (&ds.dataspace, &ds.data) {
            (Some(space), DataAst::Files(bindings)) => {
                for b in bindings {
                    self.expand_binding(ds, space, b)?;
                }
            }
            (Some(_), _) => {
                return Err(DvError::DescriptorSemantic(format!(
                    "leaf dataset `{}` has a DATASPACE but its DATA clause lists no files",
                    ds.name
                )));
            }
            (None, DataAst::Files(_)) => {
                return Err(DvError::DescriptorSemantic(format!(
                    "dataset `{}` lists files but has no DATASPACE describing their layout",
                    ds.name
                )));
            }
            (None, _) => {}
        }
        for c in &ds.children {
            self.walk(c)?;
        }
        Ok(())
    }

    /// Expand one file binding over the cartesian product of its
    /// variable ranges.
    fn expand_binding(
        &mut self,
        ds: &DatasetAst,
        space: &[SpaceItem],
        binding: &FileBinding,
    ) -> Result<()> {
        // Evaluate range bounds (must be constant; ranges may not refer
        // to other binding variables).
        let empty = Env::new();
        let mut ranges: Vec<(String, i64, i64, i64)> = Vec::with_capacity(binding.ranges.len());
        for (var, lo, hi, step) in &binding.ranges {
            let upper = var.to_ascii_uppercase();
            let lo = lo.eval(&empty)?;
            let hi = hi.eval(&empty)?;
            let step = step.eval(&empty)?;
            if step <= 0 {
                return Err(DvError::DescriptorSemantic(format!(
                    "binding variable `{upper}` in dataset `{}` has non-positive step {step}",
                    ds.name
                )));
            }
            if lo > hi {
                return Err(DvError::DescriptorSemantic(format!(
                    "binding variable `{upper}` in dataset `{}` has empty range {lo}:{hi}:{step}",
                    ds.name
                )));
            }
            ranges.push((upper, lo, hi, step));
        }

        // Check the template only uses bound variables.
        for v in binding.template.variables() {
            let upper = v.to_ascii_uppercase();
            if !ranges.iter().any(|(rv, ..)| *rv == upper) {
                return Err(DvError::DescriptorSemantic(format!(
                    "file template in dataset `{}` uses `${v}` which has no range",
                    ds.name
                )));
            }
        }

        let mut env = Env::new();
        self.expand_rec(ds, space, binding, &ranges, 0, &mut env)
    }

    fn expand_rec(
        &mut self,
        ds: &DatasetAst,
        space: &[SpaceItem],
        binding: &FileBinding,
        ranges: &[(String, i64, i64, i64)],
        depth: usize,
        env: &mut Env,
    ) -> Result<()> {
        if depth == ranges.len() {
            return self.emit_file(ds, space, binding, env);
        }
        let (var, lo, hi, step) = ranges[depth].clone();
        let mut v = lo;
        while v <= hi {
            env.insert(var.clone(), v);
            self.expand_rec(ds, space, binding, ranges, depth + 1, env)?;
            v += step;
        }
        env.remove(&var);
        Ok(())
    }

    fn emit_file(
        &mut self,
        ds: &DatasetAst,
        space: &[SpaceItem],
        binding: &FileBinding,
        env: &Env,
    ) -> Result<()> {
        // Uppercase the env (template rendering needs original case?
        // no — vars were uppercased at range evaluation, and Expr vars
        // are matched case-sensitively, so normalize expressions too).
        let dir_slot = binding.template.dir_index.eval(&upper_env(env))?;
        let slot =
            usize::try_from(dir_slot).ok().filter(|s| *s < self.dirs.len()).ok_or_else(|| {
                DvError::DescriptorSemantic(format!(
                    "dataset `{}` references DIR[{dir_slot}] which is not in the storage section",
                    ds.name
                ))
            })?;
        let dir = self.dirs[slot].clone();
        let name = binding.template.render_name(&upper_env(env))?;
        let rel_path =
            if dir.path.is_empty() { name.clone() } else { format!("{}/{}", dir.path, name) };

        if !self.seen_paths.insert((dir.node, rel_path.clone())) {
            return Err(DvError::DescriptorSemantic(format!(
                "file `{rel_path}` on node {} is produced twice by the descriptor",
                dir.node
            )));
        }

        // Resolve the dataspace under this file's environment.
        let mut extents: BTreeMap<String, VarExtent> = BTreeMap::new();
        for (var, val) in env {
            extents.insert(var.to_ascii_uppercase(), VarExtent::Point(*val));
        }
        let layout = self.resolve_items(ds, space, &upper_env(env), &mut extents)?;

        if !binding.codec.is_affine()
            && layout.iter().any(|i| matches!(i, ResolvedItem::Chunked { .. }))
        {
            return Err(DvError::DescriptorSemantic(format!(
                "dataset `{}` uses CODEC {} with a CHUNKED layout; external-index \
                 layouts require the binary codec",
                ds.name,
                binding.codec.descriptor_name()
            )));
        }

        let mut stored_attrs: Vec<String> = Vec::new();
        collect_stored_attrs(&layout, self.schema, &mut stored_attrs);

        self.files.push(FileModel {
            id: self.files.len(),
            dataset: ds.name.clone(),
            node: dir.node,
            rel_path,
            env: upper_env(env),
            layout,
            stored_attrs,
            extents,
            codec: binding.codec,
        });
        Ok(())
    }

    fn resolve_items(
        &self,
        ds: &DatasetAst,
        items: &[SpaceItem],
        env: &Env,
        extents: &mut BTreeMap<String, VarExtent>,
    ) -> Result<Vec<ResolvedItem>> {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            match item {
                SpaceItem::Attrs(names) => {
                    let mut attrs = Vec::with_capacity(names.len());
                    for (n, _) in names {
                        let upper = n.to_ascii_uppercase();
                        if !self.attr_types.contains_key(&upper) {
                            return Err(DvError::DescriptorSemantic(format!(
                                "dataset `{}` stores attribute `{upper}` which is neither a \
                                 schema attribute nor declared in DATATYPE",
                                ds.name
                            )));
                        }
                        attrs.push(upper);
                    }
                    out.push(ResolvedItem::Attrs(attrs));
                }
                SpaceItem::Loop { var, lo, hi, step, body, .. } => {
                    let var = var.to_ascii_uppercase();
                    let lo = lo.eval(env)?;
                    let hi = hi.eval(env)?;
                    let step = step.eval(env)?;
                    if step <= 0 {
                        return Err(DvError::DescriptorSemantic(format!(
                            "LOOP {var} in dataset `{}` has non-positive step {step}",
                            ds.name
                        )));
                    }
                    if lo > hi {
                        return Err(DvError::DescriptorSemantic(format!(
                            "LOOP {var} in dataset `{}` is empty ({lo}:{hi}:{step})",
                            ds.name
                        )));
                    }
                    let ext = VarExtent::Range { lo, hi, step };
                    extents.entry(var.clone()).and_modify(|e| *e = e.merge(&ext)).or_insert(ext);
                    let body = self.resolve_items(ds, body, env, extents)?;
                    out.push(ResolvedItem::Loop { var, lo, hi, step, body });
                }
                SpaceItem::Chunked { index_template, attrs, .. } => {
                    if items.len() != 1 {
                        return Err(DvError::DescriptorSemantic(format!(
                            "CHUNKED must be the only item in the DATASPACE of dataset `{}`",
                            ds.name
                        )));
                    }
                    let raw_slot = index_template.dir_index.eval(env)?;
                    let slot = usize::try_from(raw_slot)
                        .ok()
                        .filter(|s| *s < self.dirs.len())
                        .ok_or_else(|| {
                            DvError::DescriptorSemantic(format!(
                                "index template in dataset `{}` references DIR[{raw_slot}]",
                                ds.name
                            ))
                        })?;
                    let dir = self.dirs[slot].clone();
                    let name = index_template.render_name(env)?;
                    let index_path =
                        if dir.path.is_empty() { name } else { format!("{}/{}", dir.path, name) };
                    let mut resolved_attrs = Vec::with_capacity(attrs.len());
                    for (n, _) in attrs {
                        let upper = n.to_ascii_uppercase();
                        if !self.attr_types.contains_key(&upper) {
                            return Err(DvError::DescriptorSemantic(format!(
                                "CHUNKED layout in dataset `{}` stores unknown attribute \
                                 `{upper}`",
                                ds.name
                            )));
                        }
                        resolved_attrs.push(upper);
                    }
                    out.push(ResolvedItem::Chunked {
                        index_node: dir.node,
                        index_path,
                        attrs: resolved_attrs,
                    });
                }
            }
        }
        Ok(out)
    }
}

fn upper_env(env: &Env) -> Env {
    env.iter().map(|(k, v)| (k.to_ascii_uppercase(), *v)).collect()
}

fn collect_stored_attrs(items: &[ResolvedItem], schema: &Schema, out: &mut Vec<String>) {
    for item in items {
        match item {
            ResolvedItem::Attrs(attrs) | ResolvedItem::Chunked { attrs, .. } => {
                for a in attrs {
                    if schema.index_of(a).is_some() && !out.contains(a) {
                        out.push(a.clone());
                    }
                }
            }
            ResolvedItem::Loop { body, .. } => collect_stored_attrs(body, schema, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_descriptor;

    const FIGURE4: &str = r#"
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }
  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X Y Z }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }
  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { SOIL SGAS }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
"#;

    fn model() -> DatasetModel {
        resolve(&parse_descriptor(FIGURE4).unwrap()).unwrap()
    }

    #[test]
    fn figure4_file_count() {
        let m = model();
        // 4 COORDS + 16 DATA files (4 REL × 4 DIRID).
        assert_eq!(m.files.len(), 20);
        assert_eq!(m.nodes.len(), 4);
        assert_eq!(m.index_attrs, vec!["REL", "TIME"]);
    }

    #[test]
    fn figure4_coords_files() {
        let m = model();
        let coords: Vec<&FileModel> = m.files.iter().filter(|f| f.dataset == "ipars1").collect();
        assert_eq!(coords.len(), 4);
        let c2 = coords.iter().find(|f| f.node == 2).unwrap();
        assert_eq!(c2.rel_path, "ipars/COORDS");
        assert_eq!(c2.stored_attrs, vec!["X", "Y", "Z"]);
        // Implicit grid extent on node 2: 201..=300.
        assert_eq!(c2.extents["GRID"], VarExtent::Range { lo: 201, hi: 300, step: 1 });
        assert_eq!(c2.extents["DIRID"], VarExtent::Point(2));
        // 100 grid points × 3 floats.
        assert_eq!(c2.expected_size(&m.attr_sizes), Some(1200));
    }

    #[test]
    fn figure4_data_files() {
        let m = model();
        let f = m
            .files
            .iter()
            .find(|f| f.rel_path == "ipars/DATA3" && f.node == 1)
            .expect("DATA3 on node 1");
        assert_eq!(f.env["REL"], 3);
        assert_eq!(f.env["DIRID"], 1);
        assert_eq!(f.extents["REL"], VarExtent::Point(3));
        assert_eq!(f.extents["TIME"], VarExtent::Range { lo: 1, hi: 500, step: 1 });
        assert_eq!(f.extents["GRID"], VarExtent::Range { lo: 101, hi: 200, step: 1 });
        assert_eq!(f.stored_attrs, vec!["SOIL", "SGAS"]);
        // 500 time-steps × 100 grid points × 2 floats.
        assert_eq!(f.expected_size(&m.attr_sizes), Some(400_000));
    }

    #[test]
    fn mismatched_schema_name_rejected() {
        let text = FIGURE4.replace("DatasetDescription = IPARS", "DatasetDescription = OTHER");
        let ast = parse_descriptor(&text).unwrap();
        assert!(resolve(&ast).is_err());
    }

    #[test]
    fn unknown_attr_in_dataspace_rejected() {
        let text = FIGURE4.replace("SOIL SGAS", "SOIL WAT");
        let ast = parse_descriptor(&text).unwrap();
        let e = resolve(&ast).unwrap_err().to_string();
        assert!(e.contains("WAT"), "{e}");
    }

    #[test]
    fn unknown_dataindex_attr_rejected() {
        let text = FIGURE4.replace("DATAINDEX { REL TIME }", "DATAINDEX { BOGUS }");
        let ast = parse_descriptor(&text).unwrap();
        assert!(resolve(&ast).is_err());
    }

    #[test]
    fn unlisted_nested_dataset_rejected() {
        let text = FIGURE4.replace("DATASET ipars1 DATASET ipars2", "DATASET ipars1 DATASET ghost");
        let ast = parse_descriptor(&text).unwrap();
        assert!(resolve(&ast).is_err());
    }

    #[test]
    fn duplicate_file_rejected() {
        // Two bindings that produce the same path.
        let text = FIGURE4.replace(
            "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }",
            "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 DIR[0]/COORDS }",
        );
        let ast = parse_descriptor(&text).unwrap();
        let e = resolve(&ast).unwrap_err().to_string();
        assert!(e.contains("twice"), "{e}");
    }

    #[test]
    fn unbound_template_var_rejected() {
        let text = FIGURE4.replace(
            "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }",
            "DATA { DIR[$DIRID]/COORDS$REL DIRID = 0:3:1 }",
        );
        let ast = parse_descriptor(&text).unwrap();
        let e = resolve(&ast).unwrap_err().to_string();
        assert!(e.contains("REL"), "{e}");
    }

    #[test]
    fn dir_out_of_range_rejected() {
        let text = FIGURE4.replace("DIRID = 0:3:1 }\n  }\n}", "DIRID = 0:4:1 }\n  }\n}");
        let ast = parse_descriptor(&text).unwrap();
        let e = resolve(&ast).unwrap_err().to_string();
        assert!(e.contains("DIR[4]"), "{e}");
    }

    #[test]
    fn codec_threads_to_file_models() {
        use crate::codec::CodecKind;
        let text = FIGURE4.replace(
            "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }",
            "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 CODEC csv }",
        );
        let m = resolve(&parse_descriptor(&text).unwrap()).unwrap();
        for f in &m.files {
            let want = if f.dataset == "ipars1" {
                CodecKind::DelimitedText
            } else {
                CodecKind::FixedBinary
            };
            assert_eq!(f.codec, want, "{}", f.rel_path);
        }
    }

    #[test]
    fn chunked_with_nonbinary_codec_rejected() {
        let text = r#"
[T]
X = int

[TitanData]
DatasetDescription = T
DIR[0] = tnode0/titan

DATASET "TitanData" {
  DATATYPE { T }
  DATA { DATASET chunks }
  DATASET "chunks" {
    DATASPACE { CHUNKED INDEXFILE "DIR[0]/titan.idx" { X } }
    DATA { DIR[0]/titan.dat CODEC zstd }
  }
}
"#;
        let e = resolve(&parse_descriptor(text).unwrap()).unwrap_err().to_string();
        assert!(e.contains("CHUNKED"), "{e}");
    }

    #[test]
    fn node_identity_shared_across_dirs() {
        // Two DIR entries on the same node name map to one node id.
        let text = r#"
[S]
A = int

[D]
DatasetDescription = S
DIR[0] = big/part0
DIR[1] = big/part1

DATASET "D" {
  DATATYPE { S }
  DATASET "leaf" {
    DATASPACE { LOOP I 1:4:1 { A } }
    DATA { DIR[$DIRID]/f DIRID = 0:1:1 }
  }
  DATA { DATASET leaf }
}
"#;
        let m = resolve(&parse_descriptor(text).unwrap()).unwrap();
        assert_eq!(m.nodes, vec!["big"]);
        assert_eq!(m.files.len(), 2);
        assert!(m.files.iter().all(|f| f.node == 0));
        assert_eq!(m.files[0].rel_path, "part0/f");
        assert_eq!(m.files[1].rel_path, "part1/f");
    }
}
