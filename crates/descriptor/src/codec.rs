//! Per-file storage codecs.
//!
//! The paper assumes flat binary files whose record offsets are affine
//! functions of the loop indices. Real archives mix formats: the same
//! logical dataset may live as packed binary, delimited text, or
//! compressed segments. This module is the single home of that
//! knowledge: every file binding carries a [`CodecKind`], and the
//! layout/extraction layers translate between the *physical* bytes on
//! disk and the *logical* byte image — the packed little-endian
//! fixed-stride stream every downstream component (AFC math, segment
//! planning, pruning, cost analysis) continues to reason about.
//!
//! * [`CodecKind::FixedBinary`] — identity; physical == logical. The
//!   only affine codec, and the only one eligible for a `Safe`
//!   verification certificate (byte extents are provable from file
//!   sizes alone).
//! * [`CodecKind::DelimitedText`] — one CSV line per record instance,
//!   fields in layout order, typed by the descriptor's attribute
//!   table. Physical size is data-dependent, so verification can only
//!   certify it `Unverified` and decode is always checked.
//! * [`CodecKind::ZstdSegment`] — the logical image stored as a zstd
//!   frame (RFC 8878). The encoder emits Raw and RLE blocks only — a
//!   valid, universally-decodable subset — and the decoder rejects
//!   entropy-coded blocks with a clean error rather than guessing.
//!   Decompressed bytes are cached by the I/O layer keyed on logical
//!   ranges, so warm reads never touch the frame again.

use std::collections::HashMap;

use dv_types::{DataType, DvError, Result};

use crate::model::{FileModel, ResolvedItem};

/// Storage codec of one `DATA` file binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// Packed little-endian binary; record offsets are affine in the
    /// loop indices. The default, and bit-identical to the pre-codec
    /// storage model.
    #[default]
    FixedBinary,
    /// Comma-separated text, one line per record instance.
    DelimitedText,
    /// The logical image compressed as a single zstd frame.
    ZstdSegment,
}

impl CodecKind {
    /// Parse a `CODEC` clause word (case-insensitive).
    pub fn parse(word: &str) -> Option<CodecKind> {
        match word.to_ascii_lowercase().as_str() {
            "binary" => Some(CodecKind::FixedBinary),
            "csv" => Some(CodecKind::DelimitedText),
            "zstd" => Some(CodecKind::ZstdSegment),
            _ => None,
        }
    }

    /// Canonical descriptor spelling.
    pub const fn descriptor_name(self) -> &'static str {
        match self {
            CodecKind::FixedBinary => "binary",
            CodecKind::DelimitedText => "csv",
            CodecKind::ZstdSegment => "zstd",
        }
    }

    /// True when physical offsets are affine in the loop indices —
    /// i.e. physical bytes *are* the logical image and byte extents
    /// can be verified from file sizes alone.
    pub const fn is_affine(self) -> bool {
        matches!(self, CodecKind::FixedBinary)
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.descriptor_name())
    }
}

/// Decode a file's physical bytes into its logical image.
///
/// `FixedBinary` copies; `ZstdSegment` inflates the frame;
/// `DelimitedText` parses and re-packs using the file's resolved
/// layout and the dataset's attribute types.
pub fn decode_physical(
    kind: CodecKind,
    file: &FileModel,
    attr_types: &HashMap<String, DataType>,
    physical: &[u8],
) -> Result<Vec<u8>> {
    match kind {
        CodecKind::FixedBinary => Ok(physical.to_vec()),
        CodecKind::ZstdSegment => zstd_decompress(physical),
        CodecKind::DelimitedText => {
            let text = std::str::from_utf8(physical).map_err(|e| {
                DvError::Runtime(format!("CSV file `{}` is not valid UTF-8: {e}", file.rel_path))
            })?;
            csv_decode(file, attr_types, text)
        }
    }
}

/// Encode a logical image into a file's physical bytes (the inverse of
/// [`decode_physical`]; used by datagen's transcoding emitters).
pub fn encode_logical(
    kind: CodecKind,
    file: &FileModel,
    attr_types: &HashMap<String, DataType>,
    logical: &[u8],
) -> Result<Vec<u8>> {
    match kind {
        CodecKind::FixedBinary => Ok(logical.to_vec()),
        CodecKind::ZstdSegment => Ok(zstd_compress(logical)),
        CodecKind::DelimitedText => csv_encode(file, attr_types, logical).map(String::into_bytes),
    }
}

// ---------------------------------------------------------------------------
// Record-stream walking
// ---------------------------------------------------------------------------

/// Walk the resolved layout in storage order, invoking `f` once per
/// record instance with the record's attribute run. `CHUNKED` layouts
/// are data-dependent and rejected (they are restricted to the
/// `binary` codec at resolution time).
pub fn for_each_record<'a>(
    items: &'a [ResolvedItem],
    f: &mut impl FnMut(&'a [String]) -> Result<()>,
) -> Result<()> {
    for item in items {
        match item {
            ResolvedItem::Attrs(attrs) => f(attrs)?,
            ResolvedItem::Loop { lo, hi, step, body, .. } => {
                let iters = ResolvedItem::loop_iterations(*lo, *hi, *step);
                for _ in 0..iters {
                    for_each_record(body, f)?;
                }
            }
            ResolvedItem::Chunked { index_path, .. } => {
                return Err(DvError::Runtime(format!(
                    "CHUNKED layout (index `{index_path}`) has no record stream; \
                     only the binary codec supports it"
                )));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

fn cell_to_string(ty: DataType, bytes: &[u8]) -> String {
    match ty {
        DataType::Char => (bytes[0] as i8).to_string(),
        DataType::Short => i16::from_le_bytes([bytes[0], bytes[1]]).to_string(),
        DataType::Int => i32::from_le_bytes(bytes.try_into().unwrap()).to_string(),
        DataType::Long => i64::from_le_bytes(bytes.try_into().unwrap()).to_string(),
        DataType::Float => {
            let v = f32::from_le_bytes(bytes.try_into().unwrap());
            // `{}` is shortest-round-trip for finite floats; non-finite
            // payload bits survive only through the hex escape.
            if v.is_finite() {
                format!("{v}")
            } else {
                format!("0x{:08x}", v.to_bits())
            }
        }
        DataType::Double => {
            let v = f64::from_le_bytes(bytes.try_into().unwrap());
            if v.is_finite() {
                format!("{v}")
            } else {
                format!("0x{:016x}", v.to_bits())
            }
        }
    }
}

fn cell_from_str(ty: DataType, cell: &str, out: &mut Vec<u8>) -> Result<()> {
    let bad = |what: &str| DvError::Runtime(format!("CSV cell `{cell}` is not a valid {what}"));
    let cell = cell.trim();
    match ty {
        DataType::Char => out.push(cell.parse::<i8>().map_err(|_| bad("char"))? as u8),
        DataType::Short => {
            out.extend_from_slice(&cell.parse::<i16>().map_err(|_| bad("short int"))?.to_le_bytes())
        }
        DataType::Int => {
            out.extend_from_slice(&cell.parse::<i32>().map_err(|_| bad("int"))?.to_le_bytes())
        }
        DataType::Long => {
            out.extend_from_slice(&cell.parse::<i64>().map_err(|_| bad("long int"))?.to_le_bytes())
        }
        DataType::Float => {
            let v = if let Some(hex) = cell.strip_prefix("0x") {
                f32::from_bits(u32::from_str_radix(hex, 16).map_err(|_| bad("float"))?)
            } else {
                cell.parse::<f32>().map_err(|_| bad("float"))?
            };
            out.extend_from_slice(&v.to_le_bytes());
        }
        DataType::Double => {
            let v = if let Some(hex) = cell.strip_prefix("0x") {
                f64::from_bits(u64::from_str_radix(hex, 16).map_err(|_| bad("double"))?)
            } else {
                cell.parse::<f64>().map_err(|_| bad("double"))?
            };
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(())
}

fn attr_type(attr_types: &HashMap<String, DataType>, attr: &str) -> Result<DataType> {
    attr_types
        .get(attr)
        .copied()
        .ok_or_else(|| DvError::Runtime(format!("attribute `{attr}` has no declared type")))
}

/// Render a logical image as CSV text (one line per record instance).
pub fn csv_encode(
    file: &FileModel,
    attr_types: &HashMap<String, DataType>,
    logical: &[u8],
) -> Result<String> {
    let mut out = String::new();
    let mut cursor = 0usize;
    for_each_record(&file.layout, &mut |attrs| {
        for (i, a) in attrs.iter().enumerate() {
            let ty = attr_type(attr_types, a)?;
            let end = cursor + ty.size();
            let bytes = logical.get(cursor..end).ok_or_else(|| {
                DvError::Runtime(format!(
                    "logical image of `{}` is truncated at byte {cursor}",
                    file.rel_path
                ))
            })?;
            if i > 0 {
                out.push(',');
            }
            out.push_str(&cell_to_string(ty, bytes));
            cursor = end;
        }
        out.push('\n');
        Ok(())
    })?;
    if cursor != logical.len() {
        return Err(DvError::Runtime(format!(
            "logical image of `{}` has {} trailing bytes past the layout",
            file.rel_path,
            logical.len() - cursor
        )));
    }
    Ok(out)
}

/// Parse CSV text back into the packed logical image, validating every
/// cell against the file's layout and attribute types.
pub fn csv_decode(
    file: &FileModel,
    attr_types: &HashMap<String, DataType>,
    text: &str,
) -> Result<Vec<u8>> {
    let mut lines = text.lines();
    let mut out = Vec::with_capacity(text.len());
    let mut records = 0u64;
    for_each_record(&file.layout, &mut |attrs| {
        records += 1;
        let line = lines.next().ok_or_else(|| {
            DvError::Runtime(format!(
                "CSV file `{}` is truncated: record {records} missing",
                file.rel_path
            ))
        })?;
        let mut cells = line.split(',');
        for a in attrs {
            let ty = attr_type(attr_types, a)?;
            let cell = cells.next().ok_or_else(|| {
                DvError::Runtime(format!(
                    "CSV file `{}` record {records}: missing field for `{a}`",
                    file.rel_path
                ))
            })?;
            cell_from_str(ty, cell, &mut out).map_err(|e| {
                DvError::Runtime(format!("CSV file `{}` record {records}: {e}", file.rel_path))
            })?;
        }
        if cells.next().is_some() {
            return Err(DvError::Runtime(format!(
                "CSV file `{}` record {records}: too many fields",
                file.rel_path
            )));
        }
        Ok(())
    })?;
    if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
        return Err(DvError::Runtime(format!(
            "CSV file `{}` has trailing data past record {records}: `{extra}`",
            file.rel_path
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// zstd (RFC 8878 subset: Raw and RLE blocks)
// ---------------------------------------------------------------------------

const ZSTD_MAGIC: u32 = 0xFD2F_B528;
/// Encoder chunk size; well under the 2^21-1 Block_Size ceiling.
const ZSTD_CHUNK: usize = 64 * 1024;

/// Compress `data` into a single zstd frame using Raw and RLE blocks.
/// Runs of a single byte value become RLE blocks (the real win on
/// sparse scientific output); everything else is stored Raw. Any
/// conforming zstd decoder can read the result.
pub fn zstd_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 32);
    out.extend_from_slice(&ZSTD_MAGIC.to_le_bytes());
    // Frame_Header_Descriptor: FCS_flag=3 (8-byte size), Single_Segment.
    out.push(0xE0);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    let push_block_header = |out: &mut Vec<u8>, last: bool, ty: u32, size: u32| {
        let word = (last as u32) | (ty << 1) | (size << 3);
        out.extend_from_slice(&word.to_le_bytes()[..3]);
    };

    if data.is_empty() {
        push_block_header(&mut out, true, 0, 0);
        return out;
    }
    let mut off = 0;
    while off < data.len() {
        let end = (off + ZSTD_CHUNK).min(data.len());
        let chunk = &data[off..end];
        let last = end == data.len();
        if chunk.len() > 1 && chunk.iter().all(|b| *b == chunk[0]) {
            push_block_header(&mut out, last, 1, chunk.len() as u32);
            out.push(chunk[0]);
        } else {
            push_block_header(&mut out, last, 0, chunk.len() as u32);
            out.extend_from_slice(chunk);
        }
        off = end;
    }
    out
}

/// Decompress a single zstd frame. Handles any frame header without a
/// dictionary; block payloads must be Raw or RLE (entropy-coded blocks
/// produce a clean error, not a wrong answer). The decoded length is
/// validated against the frame's declared content size.
pub fn zstd_decompress(frame: &[u8]) -> Result<Vec<u8>> {
    let err = |m: String| DvError::Runtime(format!("zstd: {m}"));
    let need = |n: usize, what: &str| err(format!("truncated frame: missing {what} ({n} bytes)"));

    let magic = frame.get(..4).ok_or_else(|| need(4, "magic"))?;
    if u32::from_le_bytes(magic.try_into().unwrap()) != ZSTD_MAGIC {
        return Err(err("bad magic number".into()));
    }
    let fhd = *frame.get(4).ok_or_else(|| need(1, "frame header descriptor"))?;
    if fhd & 0x08 != 0 {
        return Err(err("reserved frame header bit set".into()));
    }
    if fhd & 0x03 != 0 {
        return Err(err("dictionaries are not supported".into()));
    }
    let single_segment = fhd & 0x20 != 0;
    let checksum = fhd & 0x04 != 0;
    let fcs_flag = fhd >> 6;
    let mut pos = 5usize;
    if !single_segment {
        frame.get(pos).ok_or_else(|| need(1, "window descriptor"))?;
        pos += 1;
    }
    let fcs_len = match fcs_flag {
        0 => {
            if single_segment {
                1
            } else {
                return Err(err("unknown frame content size is not supported".into()));
            }
        }
        1 => 2,
        2 => 4,
        _ => 8,
    };
    let fcs_bytes =
        frame.get(pos..pos + fcs_len).ok_or_else(|| need(fcs_len, "frame content size"))?;
    pos += fcs_len;
    let mut fcs = 0u64;
    for (i, b) in fcs_bytes.iter().enumerate() {
        fcs |= (*b as u64) << (8 * i);
    }
    if fcs_len == 2 {
        fcs += 256;
    }

    let mut out = Vec::with_capacity(fcs as usize);
    loop {
        let hdr = frame.get(pos..pos + 3).ok_or_else(|| need(3, "block header"))?;
        pos += 3;
        let word = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], 0]);
        let last = word & 1 != 0;
        let ty = (word >> 1) & 3;
        let size = (word >> 3) as usize;
        match ty {
            0 => {
                let payload =
                    frame.get(pos..pos + size).ok_or_else(|| need(size, "raw block payload"))?;
                out.extend_from_slice(payload);
                pos += size;
            }
            1 => {
                let byte = *frame.get(pos).ok_or_else(|| need(1, "RLE block payload"))?;
                out.resize(out.len() + size, byte);
                pos += 1;
            }
            2 => return Err(err("entropy-coded (Compressed) blocks are not supported".into())),
            _ => return Err(err("reserved block type".into())),
        }
        if out.len() as u64 > fcs {
            return Err(err(format!(
                "decoded {} bytes, more than the declared content size {fcs}",
                out.len()
            )));
        }
        if last {
            break;
        }
    }
    if checksum {
        frame.get(pos..pos + 4).ok_or_else(|| need(4, "content checksum"))?;
        pos += 4;
    }
    if pos != frame.len() {
        return Err(err(format!("{} trailing bytes after frame", frame.len() - pos)));
    }
    if out.len() as u64 != fcs {
        return Err(err(format!("decoded {} bytes but the frame declares {fcs}", out.len())));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use std::collections::BTreeMap;

    fn zstd_roundtrip(data: &[u8]) {
        let frame = zstd_compress(data);
        let back = zstd_decompress(&frame).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn zstd_roundtrips() {
        zstd_roundtrip(b"");
        zstd_roundtrip(b"hello world");
        zstd_roundtrip(&vec![0u8; 1_000_000]);
        let mixed: Vec<u8> = (0..300_000).map(|i| (i % 251) as u8).collect();
        zstd_roundtrip(&mixed);
    }

    #[test]
    fn zstd_rle_compresses() {
        let data = vec![7u8; 512 * 1024];
        let frame = zstd_compress(&data);
        assert!(frame.len() < 64, "RLE frame should be tiny, got {}", frame.len());
    }

    #[test]
    fn zstd_rejects_corruption() {
        let mut frame = zstd_compress(b"some data here");
        // Bad magic.
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert!(zstd_decompress(&bad).is_err());
        // Truncated payload.
        frame.truncate(frame.len() - 3);
        assert!(zstd_decompress(&frame).is_err());
        // Entropy-coded block type.
        let mut ent = zstd_compress(b"x");
        ent[13] |= 0b100; // block type 2 in the first header byte
        assert!(zstd_decompress(&ent).unwrap_err().to_string().contains("entropy"));
    }

    fn toy_file() -> (FileModel, HashMap<String, DataType>) {
        let layout = vec![ResolvedItem::Loop {
            var: "I".into(),
            lo: 1,
            hi: 3,
            step: 1,
            body: vec![ResolvedItem::Attrs(vec!["T".into(), "X".into()])],
        }];
        let file = FileModel {
            id: 0,
            dataset: "d".into(),
            node: 0,
            rel_path: "f".into(),
            env: Default::default(),
            layout,
            stored_attrs: vec!["T".into(), "X".into()],
            extents: BTreeMap::new(),
            codec: CodecKind::DelimitedText,
        };
        let types: HashMap<String, DataType> =
            [("T".to_string(), DataType::Int), ("X".to_string(), DataType::Float)]
                .into_iter()
                .collect();
        (file, types)
    }

    #[test]
    fn csv_roundtrips() {
        let (file, types) = toy_file();
        let mut logical = Vec::new();
        for i in 0..3i32 {
            logical.extend_from_slice(&i.to_le_bytes());
            logical.extend_from_slice(&(0.25f32 * i as f32 - 7.5).to_le_bytes());
        }
        let text = csv_encode(&file, &types, &logical).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = csv_decode(&file, &types, &text).unwrap();
        assert_eq!(back, logical);
    }

    #[test]
    fn csv_nonfinite_floats_roundtrip() {
        let (file, types) = toy_file();
        let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let mut logical = Vec::new();
        for (i, s) in specials.iter().enumerate() {
            logical.extend_from_slice(&(i as i32).to_le_bytes());
            logical.extend_from_slice(&s.to_le_bytes());
        }
        let text = csv_encode(&file, &types, &logical).unwrap();
        let back = csv_decode(&file, &types, &text).unwrap();
        assert_eq!(back, logical);
    }

    #[test]
    fn csv_truncation_and_bad_cells_error() {
        let (file, types) = toy_file();
        let e = csv_decode(&file, &types, "1,2.0\n").unwrap_err().to_string();
        assert!(e.contains("truncated"), "{e}");
        let e = csv_decode(&file, &types, "1,2.0\n2,oops\n3,4.0\n").unwrap_err().to_string();
        assert!(e.contains("oops"), "{e}");
        let e = csv_decode(&file, &types, "1,2.0\n2,3.0,9\n3,4.0\n").unwrap_err().to_string();
        assert!(e.contains("too many"), "{e}");
        let e = csv_decode(&file, &types, "1,2.0\n2,3.0\n3,4.0\n5,6.0\n").unwrap_err().to_string();
        assert!(e.contains("trailing"), "{e}");
    }

    #[test]
    fn codec_kind_parse() {
        assert_eq!(CodecKind::parse("CSV"), Some(CodecKind::DelimitedText));
        assert_eq!(CodecKind::parse("zstd"), Some(CodecKind::ZstdSegment));
        assert_eq!(CodecKind::parse("Binary"), Some(CodecKind::FixedBinary));
        assert_eq!(CodecKind::parse("lz4"), None);
        assert!(CodecKind::FixedBinary.is_affine());
        assert!(!CodecKind::DelimitedText.is_affine());
    }
}
