//! Abstract syntax of the three descriptor components.
//!
//! Nodes carry [`Span`]s pointing back at the descriptor source so
//! that semantic checks and `dv lint` diagnostics can render the
//! offending region. Spans never participate in equality (see
//! [`Span`]), so comparing an AST against the re-parse of its
//! pretty-printed form still works.

use dv_types::{DataType, Span};

use crate::codec::CodecKind;
use crate::expr::Expr;

/// A full parsed descriptor (all three components).
#[derive(Debug, Clone, PartialEq)]
pub struct DescriptorAst {
    pub schema: SchemaAst,
    pub storage: StorageAst,
    /// The root of the layout component's `DATASET` tree.
    pub layout: DatasetAst,
}

/// Component I — Dataset Schema Description.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaAst {
    pub name: String,
    /// Span of the `[NAME]` header.
    pub name_span: Span,
    /// `(attr, type, span of the declaration)` in declaration order.
    pub attrs: Vec<(String, DataType, Span)>,
}

/// Component II — Dataset Storage Description.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageAst {
    /// Dataset name (`[IparsData]`).
    pub dataset_name: String,
    /// `DatasetDescription = <schema name>`.
    pub schema_name: String,
    /// `DIR[i] = node/path` entries, keyed by the bracket index.
    pub dirs: Vec<DirAst>,
}

/// One `DIR[i] = node/path` line.
#[derive(Debug, Clone, PartialEq)]
pub struct DirAst {
    pub index: usize,
    /// Cluster node name (first path segment, e.g. `osu0`).
    pub node: String,
    /// Directory path on that node (remaining segments).
    pub path: String,
    /// Span of the whole `DIR[i] = node/path` line.
    pub span: Span,
}

/// Component III — one `DATASET "name" { ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetAst {
    pub name: String,
    /// Span of the dataset name in the `DATASET "name"` header.
    pub name_span: Span,
    /// `DATATYPE { SCHEMA }` reference, if present.
    pub schema_ref: Option<String>,
    /// `DATATYPE { NAME = type ... }` — auxiliary attributes stored in
    /// files but absent from the virtual table (chunk headers, padding).
    pub extra_attrs: Vec<(String, DataType, Span)>,
    /// `DATAINDEX { ... }` attribute names with their spans.
    pub index_attrs: Vec<(String, Span)>,
    /// `DATASPACE { ... }` — present on leaf datasets only.
    pub dataspace: Option<Vec<SpaceItem>>,
    /// `DATA { ... }` contents.
    pub data: DataAst,
    /// Nested `DATASET` definitions.
    pub children: Vec<DatasetAst>,
}

/// Contents of a `DATA { ... }` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum DataAst {
    /// Non-leaf: `DATA { DATASET a DATASET b }`.
    Nested(Vec<String>),
    /// Leaf: one or more file bindings.
    Files(Vec<FileBinding>),
    /// Missing `DATA` clause (legal only for non-leaf datasets whose
    /// children are all explicitly listed as nested definitions).
    Absent,
}

/// One item inside a `DATASPACE { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceItem {
    /// `LOOP VAR lo:hi:step { ... }` — inclusive bounds, as in the
    /// paper's Figure 4 (`LOOP TIME 1:500:1` iterates 500 times).
    /// `span` covers the `LOOP VAR lo:hi:step` header.
    Loop { var: String, lo: Expr, hi: Expr, step: Expr, body: Vec<SpaceItem>, span: Span },
    /// A run of attribute names stored contiguously per iteration,
    /// each with the span of its occurrence.
    Attrs(Vec<(String, Span)>),
    /// `CHUNKED INDEXFILE "template" { attrs }` — variable-length
    /// chunks of records described by an external index file (our
    /// extension for the Titan satellite layout, see DESIGN.md).
    Chunked { index_template: PathTemplate, attrs: Vec<(String, Span)>, span: Span },
}

impl SpaceItem {
    /// Source span of the item (joined attr spans for a run).
    pub fn span(&self) -> Span {
        match self {
            SpaceItem::Loop { span, .. } | SpaceItem::Chunked { span, .. } => *span,
            SpaceItem::Attrs(attrs) => attrs.iter().fold(Span::DUMMY, |acc, (_, s)| acc.to(*s)),
        }
    }
}

/// A file path template: a dir reference plus name parts with embedded
/// variables (`DIR[$DIRID]/DATA$REL`).
#[derive(Debug, Clone, PartialEq)]
pub struct PathTemplate {
    /// The expression inside `DIR[...]`.
    pub dir_index: Expr,
    /// Template of the path below the directory.
    pub name: Vec<NamePart>,
}

/// One segment of a templated file name.
#[derive(Debug, Clone, PartialEq)]
pub enum NamePart {
    Text(String),
    Var(String),
}

impl PathTemplate {
    /// Render the file-name portion under `env`.
    pub fn render_name(&self, env: &crate::expr::Env) -> dv_types::Result<String> {
        let mut out = String::new();
        for part in &self.name {
            match part {
                NamePart::Text(t) => out.push_str(t),
                NamePart::Var(v) => {
                    let val = env.get(v).ok_or_else(|| {
                        dv_types::DvError::DescriptorSemantic(format!(
                            "unbound variable `${v}` in file template"
                        ))
                    })?;
                    out.push_str(&val.to_string());
                }
            }
        }
        Ok(out)
    }

    /// Variables referenced anywhere in the template.
    pub fn variables(&self) -> Vec<String> {
        let mut vars = self.dir_index.variables();
        for part in &self.name {
            if let NamePart::Var(v) = part {
                vars.push(v.clone());
            }
        }
        vars.sort();
        vars.dedup();
        vars
    }
}

/// A leaf `DATA` entry: template plus the ranges of its binding
/// variables (`DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1`),
/// optionally followed by a `CODEC <name>` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct FileBinding {
    pub template: PathTemplate,
    /// `(var, lo, hi, step)` — inclusive, like loop bounds.
    pub ranges: Vec<(String, Expr, Expr, Expr)>,
    /// Storage codec of every file the binding expands to
    /// (`CODEC csv`); defaults to fixed-stride binary.
    pub codec: CodecKind,
    /// Span from the file template through the last range.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;

    #[test]
    fn render_template() {
        let t = PathTemplate {
            dir_index: Expr::Var("DIRID".into()),
            name: vec![NamePart::Text("DATA".into()), NamePart::Var("REL".into())],
        };
        let mut env = Env::new();
        env.insert("DIRID".into(), 1);
        env.insert("REL".into(), 3);
        assert_eq!(t.render_name(&env).unwrap(), "DATA3");
        assert_eq!(t.variables(), vec!["DIRID".to_string(), "REL".to_string()]);
    }

    #[test]
    fn render_unbound_fails() {
        let t = PathTemplate { dir_index: Expr::Int(0), name: vec![NamePart::Var("REL".into())] };
        assert!(t.render_name(&Env::new()).is_err());
    }
}
