//! Integer affine expressions in loop bounds and dir references.
//!
//! The layout component parameterizes loop bounds and file bindings by
//! variables such as `$DIRID` and `$REL`
//! (`LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1`). Expressions are
//! integer-valued with `+ - * / %` (C semantics: truncating division)
//! and evaluate under an environment binding every referenced
//! variable.

use std::collections::BTreeMap;
use std::fmt;

use dv_types::{DvError, Result};

/// Variable environment: `$NAME` → value.
pub type Env = BTreeMap<String, i64>;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// An integer expression over `$`-variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Var(String),
    Bin { op: Op, lhs: Box<Expr>, rhs: Box<Expr> },
    Neg(Box<Expr>),
}

impl Expr {
    /// Evaluate under `env`. Unbound variables and division by zero
    /// are semantic errors (reported with the variable name).
    pub fn eval(&self, env: &Env) -> Result<i64> {
        match self {
            Expr::Int(v) => Ok(*v),
            Expr::Var(name) => env.get(name).copied().ok_or_else(|| {
                DvError::DescriptorSemantic(format!("unbound variable `${name}` in expression"))
            }),
            Expr::Neg(e) => Ok(-e.eval(env)?),
            Expr::Bin { op, lhs, rhs } => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                match op {
                    Op::Add => Ok(l + r),
                    Op::Sub => Ok(l - r),
                    Op::Mul => Ok(l * r),
                    Op::Div => {
                        if r == 0 {
                            Err(DvError::DescriptorSemantic("division by zero".into()))
                        } else {
                            Ok(l / r)
                        }
                    }
                    Op::Mod => {
                        if r == 0 {
                            Err(DvError::DescriptorSemantic("modulo by zero".into()))
                        } else {
                            Ok(l % r)
                        }
                    }
                }
            }
        }
    }

    /// All variables referenced by the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Neg(e) => e.collect_vars(out),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "${v}"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Bin { op, lhs, rhs } => {
                let sym = match op {
                    Op::Add => "+",
                    Op::Sub => "-",
                    Op::Mul => "*",
                    Op::Div => "/",
                    Op::Mod => "%",
                };
                write!(f, "({lhs}{sym}{rhs})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> Env {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn bin(op: Op, l: Expr, r: Expr) -> Expr {
        Expr::Bin { op, lhs: Box::new(l), rhs: Box::new(r) }
    }

    #[test]
    fn paper_loop_bound() {
        // $DIRID*100+1 with DIRID=2 → 201.
        let e = bin(Op::Add, bin(Op::Mul, Expr::Var("DIRID".into()), Expr::Int(100)), Expr::Int(1));
        assert_eq!(e.eval(&env(&[("DIRID", 2)])).unwrap(), 201);
    }

    #[test]
    fn unbound_variable_named_in_error() {
        let e = Expr::Var("REL".into());
        let msg = e.eval(&Env::new()).unwrap_err().to_string();
        assert!(msg.contains("$REL"), "{msg}");
    }

    #[test]
    fn division_truncates_and_guards_zero() {
        let e = bin(Op::Div, Expr::Int(7), Expr::Int(2));
        assert_eq!(e.eval(&Env::new()).unwrap(), 3);
        let z = bin(Op::Div, Expr::Int(1), Expr::Int(0));
        assert!(z.eval(&Env::new()).is_err());
        let m = bin(Op::Mod, Expr::Int(7), Expr::Int(0));
        assert!(m.eval(&Env::new()).is_err());
    }

    #[test]
    fn negation() {
        let e = Expr::Neg(Box::new(Expr::Int(5)));
        assert_eq!(e.eval(&Env::new()).unwrap(), -5);
    }

    #[test]
    fn variables_collected_sorted_dedup() {
        let e = bin(
            Op::Add,
            Expr::Var("REL".into()),
            bin(Op::Mul, Expr::Var("DIRID".into()), Expr::Var("REL".into())),
        );
        assert_eq!(e.variables(), vec!["DIRID".to_string(), "REL".to_string()]);
    }
}
