//! Descriptor pretty-printing: render a [`DescriptorAst`] back to
//! canonical descriptor text.
//!
//! Useful for normalizing hand-written descriptors (`datavirt fmt`),
//! for generating descriptors programmatically, and — exercised by a
//! property test — for guaranteeing the parser and printer agree on
//! the language.

use std::fmt::Write as _;

use crate::ast::{
    DataAst, DatasetAst, DescriptorAst, FileBinding, NamePart, PathTemplate, SpaceItem,
};
use crate::expr::{Expr, Op};

/// Render a full descriptor as canonical text that reparses to an
/// equivalent AST.
pub fn render(ast: &DescriptorAst) -> String {
    let mut out = String::new();

    // Component I — schema.
    let _ = writeln!(out, "[{}]", ast.schema.name);
    for (name, ty, _) in &ast.schema.attrs {
        let _ = writeln!(out, "{name} = {}", ty.descriptor_name());
    }
    out.push('\n');

    // Component II — storage.
    let _ = writeln!(out, "[{}]", ast.storage.dataset_name);
    let _ = writeln!(out, "DatasetDescription = {}", ast.storage.schema_name);
    for d in &ast.storage.dirs {
        if d.path.is_empty() {
            let _ = writeln!(out, "DIR[{}] = {}", d.index, d.node);
        } else {
            let _ = writeln!(out, "DIR[{}] = {}/{}", d.index, d.node, d.path);
        }
    }
    out.push('\n');

    // Component III — layout.
    render_dataset(&mut out, &ast.layout, 0);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_dataset(out: &mut String, ds: &DatasetAst, depth: usize) {
    indent(out, depth);
    let _ = writeln!(out, "DATASET \"{}\" {{", ds.name);

    if ds.schema_ref.is_some() || !ds.extra_attrs.is_empty() {
        indent(out, depth + 1);
        out.push_str("DATATYPE {");
        if let Some(r) = &ds.schema_ref {
            let _ = write!(out, " {r}");
        }
        for (name, ty, _) in &ds.extra_attrs {
            let _ = write!(out, " {name} = {}", ty.descriptor_name());
        }
        out.push_str(" }\n");
    }
    if !ds.index_attrs.is_empty() {
        indent(out, depth + 1);
        let names: Vec<&str> = ds.index_attrs.iter().map(|(n, _)| n.as_str()).collect();
        let _ = writeln!(out, "DATAINDEX {{ {} }}", names.join(" "));
    }
    if let Some(space) = &ds.dataspace {
        indent(out, depth + 1);
        out.push_str("DATASPACE {\n");
        for item in space {
            render_item(out, item, depth + 2);
        }
        indent(out, depth + 1);
        out.push_str("}\n");
    }
    match &ds.data {
        DataAst::Nested(names) => {
            indent(out, depth + 1);
            let parts: Vec<String> = names.iter().map(|n| format!("DATASET {n}")).collect();
            let _ = writeln!(out, "DATA {{ {} }}", parts.join(" "));
        }
        DataAst::Files(bindings) => {
            indent(out, depth + 1);
            out.push_str("DATA {");
            for b in bindings {
                let _ = write!(out, " {}", render_binding(b));
            }
            out.push_str(" }\n");
        }
        DataAst::Absent => {}
    }
    for child in &ds.children {
        render_dataset(out, child, depth + 1);
    }
    indent(out, depth);
    out.push_str("}\n");
}

fn render_item(out: &mut String, item: &SpaceItem, depth: usize) {
    match item {
        SpaceItem::Attrs(attrs) => {
            indent(out, depth);
            let names: Vec<&str> = attrs.iter().map(|(n, _)| n.as_str()).collect();
            let _ = writeln!(out, "{}", names.join(" "));
        }
        SpaceItem::Loop { var, lo, hi, step, body, .. } => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "LOOP {var} {}:{}:{} {{",
                render_expr(lo),
                render_expr(hi),
                render_expr(step)
            );
            for b in body {
                render_item(out, b, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        SpaceItem::Chunked { index_template, attrs, .. } => {
            indent(out, depth);
            let names: Vec<&str> = attrs.iter().map(|(n, _)| n.as_str()).collect();
            let _ = writeln!(
                out,
                "CHUNKED INDEXFILE \"{}\" {{ {} }}",
                render_template(index_template),
                names.join(" ")
            );
        }
    }
}

fn render_binding(b: &FileBinding) -> String {
    let mut s = render_template(&b.template);
    for (var, lo, hi, step) in &b.ranges {
        let _ = write!(s, " {var} = {}:{}:{}", render_expr(lo), render_expr(hi), render_expr(step));
    }
    if !b.codec.is_affine() {
        let _ = write!(s, " CODEC {}", b.codec.descriptor_name());
    }
    s
}

fn render_template(t: &PathTemplate) -> String {
    let mut s = format!("DIR[{}]/", render_expr(&t.dir_index));
    for part in &t.name {
        match part {
            NamePart::Text(text) => s.push_str(text),
            NamePart::Var(v) => {
                s.push('$');
                s.push_str(v);
            }
        }
    }
    s
}

/// Render an expression with enough parentheses to reparse
/// unambiguously.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Var(v) => format!("${v}"),
        Expr::Neg(inner) => format!("(-{})", render_expr(inner)),
        Expr::Bin { op, lhs, rhs } => {
            let sym = match op {
                Op::Add => "+",
                Op::Sub => "-",
                Op::Mul => "*",
                Op::Div => "/",
                Op::Mod => "%",
            };
            format!("({}{sym}{})", render_expr(lhs), render_expr(rhs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_descriptor;

    const FIGURE4: &str = r#"
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }
  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X Y Z }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }
  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { SOIL SGAS }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
"#;

    #[test]
    fn figure4_roundtrips() {
        let ast1 = parse_descriptor(FIGURE4).unwrap();
        let text = render(&ast1);
        let ast2 = parse_descriptor(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- rendered ---\n{text}"));
        assert_eq!(ast1, ast2, "--- rendered ---\n{text}");
    }

    #[test]
    fn chunked_roundtrips() {
        let text = r#"
[T]
X = int
S1 = float

[TitanData]
DatasetDescription = T
DIR[0] = tnode0/titan

DATASET "TitanData" {
  DATATYPE { T }
  DATAINDEX { X }
  DATA { DATASET chunks }
  DATASET "chunks" {
    DATASPACE { CHUNKED INDEXFILE "DIR[$DIRID]/titan.idx" { X S1 } }
    DATA { DIR[$DIRID]/titan.dat DIRID = 0:0:1 }
  }
}
"#;
        let ast1 = parse_descriptor(text).unwrap();
        let rendered = render(&ast1);
        let ast2 = parse_descriptor(&rendered).unwrap();
        assert_eq!(ast1, ast2, "--- rendered ---\n{rendered}");
    }

    #[test]
    fn extra_attrs_and_bare_node_roundtrip() {
        let text = r#"
[S]
A = int

[D]
DatasetDescription = S
DIR[0] = solo

DATASET "D" {
  DATATYPE { S HDR = long int }
  DATASET "leaf" {
    DATASPACE { HDR LOOP I -5:5:2 { A } }
    DATA { DIR[0]/f.dat }
  }
  DATA { DATASET leaf }
}
"#;
        let ast1 = parse_descriptor(text).unwrap();
        let rendered = render(&ast1);
        let ast2 = parse_descriptor(&rendered).unwrap();
        assert_eq!(ast1, ast2, "--- rendered ---\n{rendered}");
    }

    #[test]
    fn expr_rendering() {
        use crate::expr::Expr as E;
        let e = E::Bin {
            op: Op::Add,
            lhs: Box::new(E::Bin {
                op: Op::Mul,
                lhs: Box::new(E::Var("DIRID".into())),
                rhs: Box::new(E::Int(100)),
            }),
            rhs: Box::new(E::Int(1)),
        };
        assert_eq!(render_expr(&e), "(($DIRID*100)+1)");
    }
}
