//! Tokens of the meta-data description language.

use std::fmt;

use dv_types::Span;

/// A token with its byte span and 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte range of the token text in the descriptor source.
    pub span: Span,
    pub line: u32,
    pub column: u32,
}

/// Token kinds.
///
/// The language distinguishes *words* (identifiers/keywords), *paths*
/// (words that embed `/`, `[`, `]`, `$` or `.` — file templates like
/// `DIR[$DIRID]/DATA$REL`), `$`-variables, integers, quoted strings and
/// punctuation. Keywords are recognized by the parser (matching words
/// case-insensitively) so attribute names are never reserved.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier-like word (`IPARS`, `SOIL`, `LOOP`, ...).
    Word(String),
    /// A word embedding path syntax (`DIR[0]`, `osu0/ipars`,
    /// `DIR[$DIRID]/DATA$REL`).
    Path(String),
    /// `$NAME` variable reference.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Double-quoted string (dataset names, index-file templates).
    Str(String),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Equals,
    Colon,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(s) => write!(f, "{s}"),
            TokenKind::Path(s) => write!(f, "{s}"),
            TokenKind::Var(s) => write!(f, "${s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Equals => write!(f, "="),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eof => write!(f, "<end of descriptor>"),
        }
    }
}
