//! # dv-descriptor
//!
//! The meta-data description language of the paper (§3) and its
//! compiler front half. A descriptor has three components:
//!
//! 1. **Dataset Schema Description** — the virtual relational table
//!    (`[IPARS]` followed by `NAME = type` lines);
//! 2. **Dataset Storage Description** — the nodes and directories
//!    hosting the files (`[IparsData]`, `DatasetDescription = IPARS`,
//!    `DIR[i] = node/path` lines);
//! 3. **Dataset Layout Description** — a nested `DATASET` structure
//!    with `DATATYPE`, `DATAINDEX`, `DATASPACE` (containing `LOOP`
//!    nests or `CHUNKED` external-index layouts) and `DATA` clauses.
//!
//! Parsing produces a [`ast::DescriptorAst`]; [`resolve::resolve`]
//! expands it — evaluating loop-bound expressions, enumerating file
//! bindings over their variable ranges — into a [`model::DatasetModel`]
//! whose [`model::FileModel`]s carry concrete byte layouts and
//! *implicit attribute* extents. The layout compiler (`dv-layout`)
//! consumes that model to generate index and extraction plans.
//!
//! Example (the paper's Figure 4, abbreviated):
//!
//! ```text
//! [IPARS]
//! REL = short int
//! TIME = int
//! X = float
//! SOIL = float
//!
//! [IparsData]
//! DatasetDescription = IPARS
//! DIR[0] = osu0/ipars
//! DIR[1] = osu1/ipars
//!
//! DATASET "IparsData" {
//!   DATATYPE { IPARS }
//!   DATAINDEX { REL TIME }
//!   DATA { DATASET ipars1 DATASET ipars2 }
//!   DATASET "ipars1" {
//!     DATASPACE {
//!       LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X }
//!     }
//!     DATA { DIR[$DIRID]/COORDS DIRID = 0:1:1 }
//!   }
//!   DATASET "ipars2" {
//!     DATASPACE {
//!       LOOP TIME 1:500:1 {
//!         LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { SOIL }
//!       }
//!     }
//!     DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:1:1 }
//!   }
//! }
//! ```

pub mod ast;
pub mod codec;
pub mod expr;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod token;

pub use ast::DescriptorAst;
pub use codec::CodecKind;
pub use model::{DatasetModel, FileModel, ResolvedItem, VarExtent};
pub use parser::parse_descriptor;
pub use pretty::render;
pub use resolve::resolve;

use dv_types::Result;

/// Parse and resolve a descriptor in one step.
pub fn compile(text: &str) -> Result<DatasetModel> {
    let ast = parse_descriptor(text)?;
    resolve(&ast)
}
