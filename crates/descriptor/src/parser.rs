//! Recursive-descent parser for the descriptor language.
//!
//! Keywords (`DATASET`, `DATATYPE`, `DATAINDEX`, `DATASPACE`, `DATA`,
//! `LOOP`, `CHUNKED`, `INDEXFILE`, `DatasetDescription`) are matched
//! case-insensitively against words, so attribute names are never
//! reserved. See the crate docs for the full grammar by example.

use dv_types::{DataType, DvError, Result, Span};

use crate::ast::{
    DataAst, DatasetAst, DescriptorAst, DirAst, FileBinding, NamePart, PathTemplate, SchemaAst,
    SpaceItem, StorageAst,
};
use crate::codec::CodecKind;
use crate::expr::{Expr, Op};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse a complete three-component descriptor.
pub fn parse_descriptor(text: &str) -> Result<DescriptorAst> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let schema = p.schema_section()?;
    let storage = p.storage_section()?;
    let layout = p.dataset_block()?;
    p.expect_eof()?;
    Ok(DescriptorAst { schema, storage, layout })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    /// Span of the current (not yet consumed) token.
    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    /// Span of the most recently consumed token.
    fn last_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn err(&self, message: impl Into<String>) -> DvError {
        let t = &self.tokens[self.pos];
        DvError::DescriptorParse { message: message.into(), line: t.line, column: t.column }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input `{}`", self.peek())))
        }
    }

    /// Is the current token the given keyword (case-insensitive word)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn word(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Word(w) => {
                self.advance();
                Ok(w)
            }
            other => Err(self.err(format!("expected a name, found `{other}`"))),
        }
    }

    /// A dataset name: quoted string or bare word.
    fn name(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Word(w) => {
                self.advance();
                Ok(w)
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected a dataset name, found `{other}`"))),
        }
    }

    // ----- Component I: schema -----

    fn schema_section(&mut self) -> Result<SchemaAst> {
        let header_start = self.span();
        self.expect(TokenKind::LBracket)?;
        let name = self.word()?;
        self.expect(TokenKind::RBracket)?;
        let name_span = header_start.to(self.last_span());
        let mut attrs = Vec::new();
        while let TokenKind::Word(attr) = self.peek().clone() {
            if *self.peek2() != TokenKind::Equals {
                break;
            }
            let attr_start = self.span();
            self.advance(); // attr name
            self.advance(); // '='
            let ty = self.type_name()?;
            attrs.push((attr, ty, attr_start.to(self.last_span())));
        }
        if attrs.is_empty() {
            return Err(self.err(format!("schema `{name}` declares no attributes")));
        }
        Ok(SchemaAst { name, name_span, attrs })
    }

    /// One- or two-word C-style type name (`int`, `short int`). The
    /// second word is consumed only when it is not itself the start of
    /// the next `attr =` line or a section/bracket.
    fn type_name(&mut self) -> Result<DataType> {
        let first = self.word()?;
        let mut text = first;
        if let TokenKind::Word(second) = self.peek().clone() {
            if *self.peek2() != TokenKind::Equals {
                // Only `short int`/`long int`-style continuations are
                // valid; try the two-word spelling first.
                let two = format!("{text} {second}");
                if DataType::parse(&two).is_ok() {
                    self.advance();
                    text = two;
                }
            }
        }
        DataType::parse(&text)
    }

    // ----- Component II: storage -----

    fn storage_section(&mut self) -> Result<StorageAst> {
        self.expect(TokenKind::LBracket)?;
        let dataset_name = self.word()?;
        self.expect(TokenKind::RBracket)?;
        if !self.eat_keyword("DatasetDescription") {
            return Err(self.err(format!(
                "expected `DatasetDescription = <schema>` after [{dataset_name}], found `{}`",
                self.peek()
            )));
        }
        self.expect(TokenKind::Equals)?;
        let schema_name = self.word()?;
        let mut dirs = Vec::new();
        while let TokenKind::Path(p) = self.peek().clone() {
            let upper = p.to_ascii_uppercase();
            if !upper.starts_with("DIR[") {
                break;
            }
            let dir_start = self.span();
            self.advance();
            let idx_text = &p[4..p.len() - 1];
            let index: usize = idx_text.parse().map_err(|_| {
                self.err(format!("storage DIR index must be a literal integer, got `{idx_text}`"))
            })?;
            self.expect(TokenKind::Equals)?;
            let target = match self.advance() {
                TokenKind::Path(t) => t,
                TokenKind::Word(t) => t,
                other => return Err(self.err(format!("expected node/path, found `{other}`"))),
            };
            let (node, path) = match target.split_once('/') {
                Some((n, rest)) => (n.to_string(), rest.to_string()),
                None => (target.clone(), String::new()),
            };
            dirs.push(DirAst { index, node, path, span: dir_start.to(self.last_span()) });
        }
        if dirs.is_empty() {
            return Err(self.err("storage section lists no DIR entries"));
        }
        // DIR indices must be dense 0..n, in any order.
        let mut seen = vec![false; dirs.len()];
        for d in &dirs {
            if d.index >= dirs.len() || seen[d.index] {
                return Err(DvError::DescriptorSemantic(format!(
                    "storage DIR indices must be dense and unique; problem at DIR[{}]",
                    d.index
                )));
            }
            seen[d.index] = true;
        }
        Ok(StorageAst { dataset_name, schema_name, dirs })
    }

    // ----- Component III: layout -----

    fn dataset_block(&mut self) -> Result<DatasetAst> {
        if !self.eat_keyword("DATASET") {
            return Err(self.err(format!("expected `DATASET`, found `{}`", self.peek())));
        }
        let name_span = self.span();
        let name = self.name()?;
        self.expect(TokenKind::LBrace)?;
        let mut ds = DatasetAst {
            name,
            name_span,
            schema_ref: None,
            extra_attrs: Vec::new(),
            index_attrs: Vec::new(),
            dataspace: None,
            data: DataAst::Absent,
            children: Vec::new(),
        };
        loop {
            if *self.peek() == TokenKind::RBrace {
                self.advance();
                break;
            }
            if self.at_keyword("DATATYPE") {
                self.advance();
                self.datatype_clause(&mut ds)?;
            } else if self.at_keyword("DATAINDEX") {
                self.advance();
                self.expect(TokenKind::LBrace)?;
                while let TokenKind::Word(w) = self.peek().clone() {
                    ds.index_attrs.push((w, self.span()));
                    self.advance();
                    if *self.peek() == TokenKind::Comma {
                        self.advance();
                    }
                }
                self.expect(TokenKind::RBrace)?;
            } else if self.at_keyword("DATASPACE") {
                self.advance();
                self.expect(TokenKind::LBrace)?;
                let items = self.space_items()?;
                self.expect(TokenKind::RBrace)?;
                if ds.dataspace.is_some() {
                    return Err(
                        self.err(format!("dataset `{}` has more than one DATASPACE", ds.name))
                    );
                }
                ds.dataspace = Some(items);
            } else if self.at_keyword("DATA") {
                self.advance();
                self.expect(TokenKind::LBrace)?;
                ds.data = self.data_clause()?;
                self.expect(TokenKind::RBrace)?;
            } else if self.at_keyword("DATASET") {
                ds.children.push(self.dataset_block()?);
            } else {
                return Err(self.err(format!(
                    "expected DATATYPE, DATAINDEX, DATASPACE, DATA or nested DATASET, found `{}`",
                    self.peek()
                )));
            }
        }
        Ok(ds)
    }

    fn datatype_clause(&mut self, ds: &mut DatasetAst) -> Result<()> {
        self.expect(TokenKind::LBrace)?;
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.advance();
                    return Ok(());
                }
                TokenKind::Word(w) => {
                    if *self.peek2() == TokenKind::Equals {
                        // New auxiliary attribute definition.
                        let attr_start = self.span();
                        self.advance();
                        self.advance();
                        let ty = self.type_name()?;
                        ds.extra_attrs.push((w, ty, attr_start.to(self.last_span())));
                    } else {
                        // Schema reference.
                        if ds.schema_ref.is_some() {
                            return Err(self.err(format!(
                                "dataset `{}` references more than one schema in DATATYPE",
                                ds.name
                            )));
                        }
                        ds.schema_ref = Some(w);
                        self.advance();
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected schema name or attribute definition in DATATYPE, found `{other}`"
                    )))
                }
            }
        }
    }

    fn data_clause(&mut self) -> Result<DataAst> {
        if self.at_keyword("DATASET") {
            let mut names = Vec::new();
            while self.eat_keyword("DATASET") {
                names.push(self.name()?);
            }
            return Ok(DataAst::Nested(names));
        }
        let mut bindings = Vec::new();
        while let TokenKind::Path(p) = self.peek().clone() {
            let binding_start = self.span();
            self.advance();
            let template = parse_path_template(&p)
                .map_err(|m| self.err(format!("invalid file template `{p}`: {m}")))?;
            let mut ranges = Vec::new();
            while let TokenKind::Word(var) = self.peek().clone() {
                if *self.peek2() != TokenKind::Equals {
                    break;
                }
                self.advance();
                self.advance();
                let lo = self.expr()?;
                self.expect(TokenKind::Colon)?;
                let hi = self.expr()?;
                self.expect(TokenKind::Colon)?;
                let step = self.expr()?;
                ranges.push((var, lo, hi, step));
            }
            let codec = if self.eat_keyword("CODEC") {
                let word = self.word()?;
                CodecKind::parse(&word).ok_or_else(|| {
                    self.err(format!("unknown codec `{word}` (expected `binary`, `csv` or `zstd`)"))
                })?
            } else {
                CodecKind::default()
            };
            let span = binding_start.to(self.last_span());
            bindings.push(FileBinding { template, ranges, codec, span });
        }
        if bindings.is_empty() {
            return Err(self.err(
                "DATA clause must list nested DATASETs or at least one file template \
                 (templates must start with `DIR[...]`)",
            ));
        }
        Ok(DataAst::Files(bindings))
    }

    fn space_items(&mut self) -> Result<Vec<SpaceItem>> {
        let mut items = Vec::new();
        loop {
            if *self.peek() == TokenKind::RBrace {
                return Ok(items);
            }
            if self.at_keyword("LOOP") {
                let loop_start = self.span();
                self.advance();
                let var = self.word()?;
                let lo = self.expr()?;
                self.expect(TokenKind::Colon)?;
                let hi = self.expr()?;
                self.expect(TokenKind::Colon)?;
                let step = self.expr()?;
                let span = loop_start.to(self.last_span());
                self.expect(TokenKind::LBrace)?;
                let body = self.space_items()?;
                self.expect(TokenKind::RBrace)?;
                items.push(SpaceItem::Loop { var, lo, hi, step, body, span });
            } else if self.at_keyword("CHUNKED") {
                let chunked_start = self.span();
                self.advance();
                if !self.eat_keyword("INDEXFILE") {
                    return Err(self.err("expected `INDEXFILE` after `CHUNKED`"));
                }
                let template_text = match self.advance() {
                    TokenKind::Str(s) => s,
                    TokenKind::Path(p) => p,
                    other => {
                        return Err(
                            self.err(format!("expected index file template, found `{other}`"))
                        )
                    }
                };
                let index_template = parse_path_template(&template_text).map_err(|m| {
                    self.err(format!("invalid index file template `{template_text}`: {m}"))
                })?;
                self.expect(TokenKind::LBrace)?;
                let mut attrs = Vec::new();
                while let TokenKind::Word(w) = self.peek().clone() {
                    attrs.push((w, self.span()));
                    self.advance();
                    if *self.peek() == TokenKind::Comma {
                        self.advance();
                    }
                }
                self.expect(TokenKind::RBrace)?;
                if attrs.is_empty() {
                    return Err(self.err("CHUNKED layout lists no attributes"));
                }
                let span = chunked_start.to(self.last_span());
                items.push(SpaceItem::Chunked { index_template, attrs, span });
            } else if let TokenKind::Word(_) = self.peek() {
                let mut attrs = Vec::new();
                while let TokenKind::Word(w) = self.peek().clone() {
                    // Stop if this word opens a nested construct.
                    if w.eq_ignore_ascii_case("LOOP") || w.eq_ignore_ascii_case("CHUNKED") {
                        break;
                    }
                    attrs.push((w, self.span()));
                    self.advance();
                    if *self.peek() == TokenKind::Comma {
                        self.advance();
                    }
                }
                items.push(SpaceItem::Attrs(attrs));
            } else {
                return Err(self.err(format!(
                    "expected LOOP, CHUNKED or attribute names in DATASPACE, found `{}`",
                    self.peek()
                )));
            }
        }
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => Op::Add,
                TokenKind::Minus => Op::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.term()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => Op::Mul,
                TokenKind::Slash => Op::Div,
                TokenKind::Percent => Op::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.factor()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.advance();
                Ok(match self.factor()? {
                    Expr::Int(v) => Expr::Int(-v),
                    other => Expr::Neg(Box::new(other)),
                })
            }
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            TokenKind::Var(name) => {
                self.advance();
                Ok(Expr::Var(name))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected integer expression, found `{other}`"))),
        }
    }
}

/// Parse the text of a path token into a [`PathTemplate`]. Accepted
/// shape: `DIR[<int>|$VAR]/name` where `name` may interleave literal
/// text and `$VAR` references.
fn parse_path_template(text: &str) -> std::result::Result<PathTemplate, String> {
    let upper = text.to_ascii_uppercase();
    if !upper.starts_with("DIR[") {
        return Err("file templates must start with `DIR[...]`".into());
    }
    let close = text.find(']').ok_or_else(|| "missing `]`".to_string())?;
    let idx_text = &text[4..close];
    let dir_index = if let Some(var) = idx_text.strip_prefix('$') {
        Expr::Var(var.to_string())
    } else {
        Expr::Int(
            idx_text
                .parse::<i64>()
                .map_err(|_| format!("dir index must be an integer or `$var`, got `{idx_text}`"))?,
        )
    };
    let rest = &text[close + 1..];
    let rest = rest.strip_prefix('/').ok_or_else(|| "expected `/` after `DIR[...]`".to_string())?;
    if rest.is_empty() {
        return Err("empty file name after `DIR[...]/`".into());
    }
    let mut name = Vec::new();
    let mut lit = String::new();
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' {
            if !lit.is_empty() {
                name.push(NamePart::Text(std::mem::take(&mut lit)));
            }
            i += 1;
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if start == i {
                return Err("`$` must be followed by a variable name".into());
            }
            name.push(NamePart::Var(rest[start..i].to_string()));
        } else {
            lit.push(bytes[i] as char);
            i += 1;
        }
    }
    if !lit.is_empty() {
        name.push(NamePart::Text(lit));
    }
    Ok(PathTemplate { dir_index, name })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4 descriptor, verbatim in structure.
    pub(crate) const FIGURE4: &str = r#"
[IPARS]            // {* Dataset schema name *}
REL = short int    // {* Data type definition *}
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]        // {* Dataset name *}
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }
  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
        X Y Z
      }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }
  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
          SOIL SGAS
        }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
"#;

    #[test]
    fn parse_figure4() {
        let d = parse_descriptor(FIGURE4).unwrap();
        assert_eq!(d.schema.name, "IPARS");
        assert_eq!(d.schema.attrs.len(), 7);
        assert_eq!(d.schema.attrs[0], ("REL".to_string(), DataType::Short, Span::DUMMY));
        assert_eq!(d.storage.dataset_name, "IparsData");
        assert_eq!(d.storage.schema_name, "IPARS");
        assert_eq!(d.storage.dirs.len(), 4);
        assert_eq!(d.storage.dirs[2].node, "osu2");
        assert_eq!(d.storage.dirs[2].path, "ipars");

        assert_eq!(d.layout.name, "IparsData");
        assert_eq!(d.layout.schema_ref.as_deref(), Some("IPARS"));
        let index_names: Vec<&str> = d.layout.index_attrs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(index_names, vec!["REL", "TIME"]);
        // Spans point at the attribute names inside DATAINDEX.
        let (_, rel_span) = &d.layout.index_attrs[0];
        assert_eq!(&FIGURE4[rel_span.start..rel_span.end], "REL");
        assert_eq!(d.layout.data, DataAst::Nested(vec!["ipars1".into(), "ipars2".into()]));
        assert_eq!(d.layout.children.len(), 2);

        let ipars1 = &d.layout.children[0];
        assert_eq!(ipars1.name, "ipars1");
        let space = ipars1.dataspace.as_ref().unwrap();
        match &space[0] {
            SpaceItem::Loop { var, body, .. } => {
                assert_eq!(var, "GRID");
                assert_eq!(
                    body[0],
                    SpaceItem::Attrs(vec![
                        ("X".to_string(), Span::DUMMY),
                        ("Y".to_string(), Span::DUMMY),
                        ("Z".to_string(), Span::DUMMY),
                    ])
                );
            }
            other => panic!("expected LOOP, got {other:?}"),
        }

        let ipars2 = &d.layout.children[1];
        match &ipars2.data {
            DataAst::Files(bindings) => {
                assert_eq!(bindings.len(), 1);
                let b = &bindings[0];
                assert_eq!(b.ranges.len(), 2);
                assert_eq!(b.ranges[0].0, "REL");
                assert_eq!(b.ranges[1].0, "DIRID");
                assert_eq!(
                    b.template.name,
                    vec![NamePart::Text("DATA".into()), NamePart::Var("REL".into())]
                );
            }
            other => panic!("expected files, got {other:?}"),
        }
    }

    #[test]
    fn nested_loop_bounds_evaluate() {
        let d = parse_descriptor(FIGURE4).unwrap();
        let ipars2 = &d.layout.children[1];
        let space = ipars2.dataspace.as_ref().unwrap();
        let SpaceItem::Loop { body, .. } = &space[0] else { panic!() };
        let SpaceItem::Loop { lo, hi, .. } = &body[0] else { panic!() };
        let mut env = crate::expr::Env::new();
        env.insert("DIRID".into(), 3);
        assert_eq!(lo.eval(&env).unwrap(), 301);
        assert_eq!(hi.eval(&env).unwrap(), 400);
    }

    #[test]
    fn chunked_layout_parses() {
        let text = r#"
[TITAN]
X = int
S1 = float

[TitanData]
DatasetDescription = TITAN
DIR[0] = osu0/titan

DATASET "TitanData" {
  DATATYPE { TITAN }
  DATAINDEX { X }
  DATASET "chunks" {
    DATASPACE {
      CHUNKED INDEXFILE "DIR[$DIRID]/titan.idx" { X S1 }
    }
    DATA { DIR[$DIRID]/titan.dat DIRID = 0:0:1 }
  }
  DATA { DATASET chunks }
}
"#;
        let d = parse_descriptor(text).unwrap();
        let chunks = &d.layout.children[0];
        let space = chunks.dataspace.as_ref().unwrap();
        match &space[0] {
            SpaceItem::Chunked { attrs, index_template, .. } => {
                let names: Vec<&str> = attrs.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, vec!["X", "S1"]);
                assert_eq!(index_template.name, vec![NamePart::Text("titan.idx".into())]);
            }
            other => panic!("expected CHUNKED, got {other:?}"),
        }
    }

    #[test]
    fn codec_clause_parses() {
        let text = FIGURE4
            .replace(
                "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }",
                "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 CODEC csv }",
            )
            .replace(
                "DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }",
                "DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 CODEC ZSTD }",
            );
        let d = parse_descriptor(&text).unwrap();
        let DataAst::Files(b1) = &d.layout.children[0].data else { panic!() };
        assert_eq!(b1[0].codec, crate::codec::CodecKind::DelimitedText);
        let DataAst::Files(b2) = &d.layout.children[1].data else { panic!() };
        assert_eq!(b2[0].codec, crate::codec::CodecKind::ZstdSegment);

        // Default is binary; unknown codecs are rejected.
        let d = parse_descriptor(FIGURE4).unwrap();
        let DataAst::Files(b) = &d.layout.children[0].data else { panic!() };
        assert_eq!(b[0].codec, crate::codec::CodecKind::FixedBinary);
        let bad = FIGURE4.replace(
            "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }",
            "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 CODEC lz4 }",
        );
        let e = parse_descriptor(&bad).unwrap_err().to_string();
        assert!(e.contains("lz4"), "{e}");
    }

    #[test]
    fn datatype_extra_attrs() {
        let text = r#"
[S]
A = int

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S PAD = int HDR = long int }
  DATASET "leaf" {
    DATASPACE { HDR LOOP I 1:10:1 { A PAD } }
    DATA { DIR[0]/f }
  }
  DATA { DATASET leaf }
}
"#;
        let d = parse_descriptor(text).unwrap();
        assert_eq!(d.layout.schema_ref.as_deref(), Some("S"));
        assert_eq!(
            d.layout.extra_attrs,
            vec![
                ("PAD".to_string(), DataType::Int, Span::DUMMY),
                ("HDR".to_string(), DataType::Long, Span::DUMMY),
            ]
        );
        let leaf = &d.layout.children[0];
        let space = leaf.dataspace.as_ref().unwrap();
        assert_eq!(space[0], SpaceItem::Attrs(vec![("HDR".to_string(), Span::DUMMY)]));
    }

    #[test]
    fn negative_and_arith_range_bounds() {
        let text = r#"
[S]
A = int

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATASET "leaf" {
    DATASPACE { LOOP I -5:5*2:1 { A } }
    DATA { DIR[0]/f }
  }
  DATA { DATASET leaf }
}
"#;
        let d = parse_descriptor(text).unwrap();
        let leaf = &d.layout.children[0];
        let SpaceItem::Loop { lo, hi, .. } = &leaf.dataspace.as_ref().unwrap()[0] else { panic!() };
        let env = crate::expr::Env::new();
        assert_eq!(lo.eval(&env).unwrap(), -5);
        assert_eq!(hi.eval(&env).unwrap(), 10);
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_descriptor("[S]\nA = varchar").unwrap_err().to_string();
        assert!(e.contains("varchar") || e.contains("type"), "{e}");
        let e = parse_descriptor("DATASET \"X\" {}").unwrap_err();
        assert!(matches!(e, DvError::DescriptorParse { .. }));
    }

    #[test]
    fn duplicate_dir_index_rejected() {
        let text = "[S]\nA = int\n[D]\nDatasetDescription = S\nDIR[0] = n/d\nDIR[0] = n/e\nDATASET \"D\" { DATATYPE { S } DATA { DIR[0]/f } DATASPACE { A } }";
        assert!(parse_descriptor(text).is_err());
    }

    #[test]
    fn sparse_dir_index_rejected() {
        let text = "[S]\nA = int\n[D]\nDatasetDescription = S\nDIR[1] = n/d\nDATASET \"D\" { DATATYPE { S } DATA { DIR[1]/f } DATASPACE { A } }";
        assert!(parse_descriptor(text).is_err());
    }

    #[test]
    fn path_template_parser() {
        let t = parse_path_template("DIR[$DIRID]/res$REL/t$TIME.dat").unwrap();
        assert_eq!(t.dir_index, Expr::Var("DIRID".into()));
        assert_eq!(
            t.name,
            vec![
                NamePart::Text("res".into()),
                NamePart::Var("REL".into()),
                NamePart::Text("/t".into()),
                NamePart::Var("TIME".into()),
                NamePart::Text(".dat".into()),
            ]
        );
        assert!(parse_path_template("no_dir_prefix").is_err());
        assert!(parse_path_template("DIR[0]").is_err());
        assert!(parse_path_template("DIR[0]/").is_err());
    }
}
