//! Property test: for randomized descriptor ASTs, `parse(render(ast))`
//! equals `ast`, and both resolve to the same dataset model.

use proptest::prelude::*;

use dv_descriptor::ast::{
    DataAst, DatasetAst, DescriptorAst, DirAst, FileBinding, NamePart, PathTemplate, SchemaAst,
    SpaceItem, StorageAst,
};
use dv_descriptor::expr::{Expr, Op};
use dv_descriptor::{parse_descriptor, render, resolve, CodecKind};
use dv_types::{DataType, Span};

const ATTR_POOL: [&str; 8] = ["ALPHA", "BETA", "GAMMA", "DELTA", "EPS", "ZETA", "ETA", "THETA"];

fn arb_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Char),
        Just(DataType::Short),
        Just(DataType::Int),
        Just(DataType::Long),
        Just(DataType::Float),
        Just(DataType::Double),
    ]
}

/// An affine bound expression over `$DIRID`.
fn arb_bound() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (1i64..50).prop_map(Expr::Int),
        (1i64..10, 0i64..5).prop_map(|(m, c)| Expr::Bin {
            op: Op::Add,
            lhs: Box::new(Expr::Bin {
                op: Op::Mul,
                lhs: Box::new(Expr::Var("DIRID".into())),
                rhs: Box::new(Expr::Int(m)),
            }),
            rhs: Box::new(Expr::Int(c)),
        }),
    ]
}

fn arb_codec() -> impl Strategy<Value = CodecKind> {
    prop_oneof![
        Just(CodecKind::FixedBinary),
        Just(CodecKind::DelimitedText),
        Just(CodecKind::ZstdSegment),
    ]
}

#[derive(Debug, Clone)]
struct Params {
    n_attrs: usize,
    types: Vec<DataType>,
    dirs: usize,
    t_hi: i64,
    grid_lo: Expr,
    grid_extent: i64,
    split: usize,
    rels: i64,
    codecs: (CodecKind, CodecKind),
}

fn arb_params() -> impl Strategy<Value = Params> {
    (
        2usize..=8,
        prop::collection::vec(arb_type(), 8),
        1usize..=4,
        1i64..30,
        arb_bound(),
        1i64..20,
        1usize..8,
        1i64..4,
        (arb_codec(), arb_codec()),
    )
        .prop_map(|(n_attrs, types, dirs, t_hi, grid_lo, grid_extent, split, rels, codecs)| {
            Params { n_attrs, types, dirs, t_hi, grid_lo, grid_extent, split, rels, codecs }
        })
}

/// Build a two-leaf descriptor AST: a coords-style dataset holding the
/// first `split` attributes and a data-style dataset holding the rest,
/// parameterized by `$DIRID`/`$REL`.
fn build_ast(p: &Params) -> DescriptorAst {
    let split = p.split.min(p.n_attrs - 1).max(1);
    let attrs: Vec<(String, DataType, Span)> =
        (0..p.n_attrs).map(|i| (ATTR_POOL[i].to_string(), p.types[i], Span::DUMMY)).collect();
    let head: Vec<(String, Span)> =
        attrs[..split].iter().map(|(n, _, _)| (n.clone(), Span::DUMMY)).collect();
    let tail: Vec<(String, Span)> =
        attrs[split..].iter().map(|(n, _, _)| (n.clone(), Span::DUMMY)).collect();

    let grid_hi = Expr::Bin {
        op: Op::Add,
        lhs: Box::new(p.grid_lo.clone()),
        rhs: Box::new(Expr::Int(p.grid_extent)),
    };
    let grid_loop = |body: Vec<SpaceItem>| SpaceItem::Loop {
        var: "GRID".into(),
        lo: p.grid_lo.clone(),
        hi: grid_hi.clone(),
        step: Expr::Int(1),
        body,
        span: Span::DUMMY,
    };

    let leaf1 = DatasetAst {
        name: "head".into(),
        name_span: Span::DUMMY,
        schema_ref: None,
        extra_attrs: vec![],
        index_attrs: vec![],
        dataspace: Some(vec![grid_loop(vec![SpaceItem::Attrs(head)])]),
        data: DataAst::Files(vec![FileBinding {
            template: PathTemplate {
                dir_index: Expr::Var("DIRID".into()),
                name: vec![NamePart::Text("head.dat".into())],
            },
            ranges: vec![(
                "DIRID".into(),
                Expr::Int(0),
                Expr::Int(p.dirs as i64 - 1),
                Expr::Int(1),
            )],
            codec: p.codecs.0,
            span: Span::DUMMY,
        }]),
        children: vec![],
    };
    let leaf2 = DatasetAst {
        name: "tail".into(),
        name_span: Span::DUMMY,
        schema_ref: None,
        extra_attrs: vec![],
        index_attrs: vec![],
        dataspace: Some(vec![SpaceItem::Loop {
            var: "T".into(),
            lo: Expr::Int(1),
            hi: Expr::Int(p.t_hi),
            step: Expr::Int(1),
            body: vec![grid_loop(vec![SpaceItem::Attrs(tail)])],
            span: Span::DUMMY,
        }]),
        data: DataAst::Files(vec![FileBinding {
            template: PathTemplate {
                dir_index: Expr::Var("DIRID".into()),
                name: vec![NamePart::Text("tail.r".into()), NamePart::Var("REL".into())],
            },
            ranges: vec![
                ("REL".into(), Expr::Int(0), Expr::Int(p.rels - 1), Expr::Int(1)),
                ("DIRID".into(), Expr::Int(0), Expr::Int(p.dirs as i64 - 1), Expr::Int(1)),
            ],
            codec: p.codecs.1,
            span: Span::DUMMY,
        }]),
        children: vec![],
    };

    DescriptorAst {
        schema: SchemaAst { name: "PROP".into(), name_span: Span::DUMMY, attrs },
        storage: StorageAst {
            dataset_name: "PropData".into(),
            schema_name: "PROP".into(),
            dirs: (0..p.dirs)
                .map(|d| DirAst {
                    index: d,
                    node: format!("node{d}"),
                    path: format!("prop/d{d}"),
                    span: Span::DUMMY,
                })
                .collect(),
        },
        layout: DatasetAst {
            name: "PropData".into(),
            name_span: Span::DUMMY,
            schema_ref: Some("PROP".into()),
            extra_attrs: vec![],
            index_attrs: vec![("ALPHA".to_string(), Span::DUMMY)],
            dataspace: None,
            data: DataAst::Nested(vec!["head".into(), "tail".into()]),
            children: vec![leaf1, leaf2],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn render_parse_roundtrip(p in arb_params()) {
        let ast = build_ast(&p);
        let text = render(&ast);
        let reparsed = parse_descriptor(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(&ast, &reparsed, "text:\n{}", text);

        // Both ASTs resolve to identical models.
        let m1 = resolve(&ast).unwrap();
        let m2 = resolve(&reparsed).unwrap();
        prop_assert_eq!(m1.files.len(), m2.files.len());
        prop_assert_eq!(m1.schema, m2.schema);
        for (a, b) in m1.files.iter().zip(&m2.files) {
            prop_assert_eq!(a, b);
        }

        // Expected file count: head per dir + tail per (rel, dir).
        prop_assert_eq!(
            m1.files.len(),
            p.dirs + p.dirs * p.rels as usize
        );
    }
}
