//! Property tests for the SQL front-end.
//!
//! Two invariants:
//!
//! 1. **Round-trip**: `parse(display(q)) == q` for arbitrary ASTs built
//!    from the grammar — the pretty-printer emits exactly the language
//!    the parser accepts.
//! 2. **Range-analysis soundness**: for random predicates and random
//!    rows, if the predicate accepts a row then every analyzed
//!    attribute range contains the row's value. (This is the property
//!    chunk pruning relies on: pruning must never lose a satisfying
//!    row.) Predicates cover AND/OR/NOT nesting (plus explicit extra
//!    NOT wrappers, so `or_maps` and the negation pushdown see both
//!    parities), attribute-vs-attribute comparisons, arithmetic, and
//!    builtin UDF calls — everything the analysis must widen to `all`
//!    rather than constrain.

use proptest::prelude::*;

use dv_sql::analysis::attribute_ranges;
use dv_sql::eval::EvalContext;
use dv_sql::{
    bind, parse, AggFunc, ArithOp, CmpOp, Expr, Query, Scalar, SelectItem, SelectList, UdfRegistry,
};
use dv_types::{Attribute, DataType, Schema, Value};

const COLS: [&str; 4] = ["REL", "TIME", "SOIL", "X"];

fn schema() -> Schema {
    Schema::new(
        "T",
        vec![
            Attribute::new("REL", DataType::Short),
            Attribute::new("TIME", DataType::Int),
            Attribute::new("SOIL", DataType::Double),
            Attribute::new("X", DataType::Double),
        ],
    )
    .unwrap()
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_column() -> impl Strategy<Value = Scalar> {
    (0..COLS.len()).prop_map(|i| Scalar::Column(COLS[i].to_string()))
}

/// Literals on a small integer grid so that predicates and rows collide
/// often (otherwise IN/= almost never hits).
fn arb_literal() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        (-8i64..8).prop_map(Scalar::IntLit),
        (-8i64..8).prop_map(|v| Scalar::FloatLit(v as f64 / 2.0)),
    ]
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    let leaf = prop_oneof![arb_column(), arb_literal()];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Scalar::Arith {
                op: ArithOp::Add,
                lhs: Box::new(l),
                rhs: Box::new(r)
            }),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Scalar::Arith {
                op: ArithOp::Mul,
                lhs: Box::new(l),
                rhs: Box::new(r)
            }),
            // UDF calls (builtin SPEED/DISTANCE, arity 3): analysis must
            // treat these as unconstrainable, never as a narrowed range.
            (prop_oneof![Just("SPEED"), Just("DISTANCE")], prop::collection::vec(inner, 3))
                .prop_map(|(name, args)| Scalar::Func { name: name.to_string(), args }),
        ]
    })
}

fn arb_leaf_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (arb_cmp_op(), arb_column(), arb_literal()).prop_map(|(op, lhs, rhs)| Expr::Cmp {
            op,
            lhs,
            rhs
        }),
        (arb_cmp_op(), arb_scalar(), arb_scalar()).prop_map(|(op, lhs, rhs)| Expr::Cmp {
            op,
            lhs,
            rhs
        }),
        (arb_column(), prop::collection::vec(arb_literal(), 1..4), any::<bool>())
            .prop_map(|(expr, list, negated)| Expr::InList { expr, list, negated }),
        (arb_column(), arb_literal(), arb_literal(), any::<bool>())
            .prop_map(|(expr, lo, hi, negated)| Expr::Between { expr, lo, hi, negated }),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf_pred().prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Or(Box::new(l), Box::new(r))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Avg),
    ]
}

fn arb_select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        (0..COLS.len()).prop_map(|i| SelectItem::column(COLS[i])),
        Just(SelectItem::Agg { func: AggFunc::Count, arg: None }),
        (arb_agg_func(), 0..COLS.len())
            .prop_map(|(func, i)| SelectItem::Agg { func, arg: Some(COLS[i].to_string()) }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    let select = prop_oneof![
        Just(SelectList::All),
        prop::collection::vec(arb_select_item(), 1..4).prop_map(SelectList::Columns),
    ];
    let group_by = prop_oneof![
        Just(Vec::new()),
        prop::collection::vec((0..COLS.len()).prop_map(|i| COLS[i].to_string()), 1..3),
    ];
    (select, proptest::option::of(arb_expr()), group_by).prop_map(
        |(select, predicate, group_by)| {
            // `SELECT * ... GROUP BY` doesn't bind, but it still must
            // round-trip through the printer/parser.
            Query { select, dataset: "T".to_string(), predicate, group_by }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(q in arb_query()) {
        let text = q.to_string();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
        prop_assert_eq!(q, reparsed);
    }

    #[test]
    fn range_analysis_is_sound(
        expr in arb_expr(),
        // Extra NOT layers on top of whatever arb_expr generated: the
        // negation pushdown (De Morgan swap of and_maps/or_maps,
        // CmpOp::negate, IN/BETWEEN `negated` flips) is the subtlest
        // part of the analysis, so exercise odd AND even depths
        // explicitly rather than relying on recursion to produce them.
        nots in 0usize..4,
        raw in prop::collection::vec(-8i32..8, 4),
    ) {
        let schema = schema();
        let expr = (0..nots).fold(expr, |e, _| Expr::Not(Box::new(e)));
        let q = Query {
            select: SelectList::All,
            dataset: "T".into(),
            predicate: Some(expr),
            group_by: Vec::new(),
        };
        let udfs = UdfRegistry::with_builtins();
        let b = bind(&q, &schema, &udfs).unwrap();
        let pred = b.predicate.as_ref().unwrap();

        let row: Vec<Value> = vec![
            Value::Short(raw[0] as i16),
            Value::Int(raw[1]),
            Value::Double(raw[2] as f64 / 2.0),
            Value::Double(raw[3] as f64 / 2.0),
        ];
        let working: Vec<usize> = (0..4).collect();
        let cx = EvalContext::new(4, &working, &udfs);
        if cx.eval(pred, &row) {
            let map = attribute_ranges(pred);
            for (attr, set) in &map {
                let v = row[*attr].as_f64();
                prop_assert!(
                    set.contains(v),
                    "attr {} value {} escaped analyzed range {:?}",
                    attr, v, set
                );
            }
        }
    }
}
