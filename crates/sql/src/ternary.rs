//! Three-valued (Kleene) abstract interpretation of `WHERE` clauses
//! over per-attribute interval hulls — the decision core of dv-prune.
//!
//! [`abstract_eval`] answers, for one *box* of attribute values (a
//! closed hull per attribute, e.g. the implicit coordinate extents of
//! an aligned file chunk): is the predicate **true for every point**
//! of the box ([`Ternary::True`]), **false for every point**
//! ([`Ternary::False`]), or undecidable ([`Ternary::Unknown`])?
//!
//! Soundness rests on two facts:
//!
//! 1. The environment is a *superset* box: every attribute value any
//!    row of the chunk can carry lies inside its hull (attributes with
//!    no hull — stored data — are simply absent, forcing `Unknown`).
//!    A verdict that holds for every point of the box therefore holds
//!    for every actual row, and a verdict that holds for *no* point
//!    holds for no row.
//! 2. Comparisons decide only from hull endpoints, and any non-finite
//!    endpoint (`NaN` constants, overflowing arithmetic, division by
//!    an interval spanning zero) degrades the subtree to `Unknown` —
//!    IEEE `NaN` semantics can never be the value a verdict turns on.
//!
//! Correlation between multiple occurrences of one attribute is
//! deliberately lost (`X < X` evaluates each side against the same
//! hull independently); the loss only widens verdicts toward
//! `Unknown`, never flips them.

use std::collections::HashMap;

use crate::ast::{ArithOp, CmpOp};
use crate::bind::{BoundExpr, BoundScalar};

/// Closed per-attribute hulls: schema attribute index → `[lo, hi]`.
/// Attributes absent from the map are unbounded (stored data).
pub type HullEnv = HashMap<usize, (f64, f64)>;

/// Kleene three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// The predicate holds for every point of the box.
    True,
    /// The predicate holds for no point of the box.
    False,
    /// Undecidable from the hulls alone.
    Unknown,
}

impl Ternary {
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::False, _) | (_, Ternary::False) => Ternary::False,
            (Ternary::True, Ternary::True) => Ternary::True,
            _ => Ternary::Unknown,
        }
    }

    pub fn or(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::True, _) | (_, Ternary::True) => Ternary::True,
            (Ternary::False, Ternary::False) => Ternary::False,
            _ => Ternary::Unknown,
        }
    }
}

impl std::ops::Not for Ternary {
    type Output = Ternary;

    fn not(self) -> Ternary {
        match self {
            Ternary::True => Ternary::False,
            Ternary::False => Ternary::True,
            Ternary::Unknown => Ternary::Unknown,
        }
    }
}

/// Closed-hull evaluation of a scalar. `None` means the hull is
/// unknown or unsound to reason about (UDF call, unbounded attribute,
/// non-finite endpoint, division by an interval spanning zero).
fn scalar_hull(s: &BoundScalar, env: &HullEnv) -> Option<(f64, f64)> {
    let (lo, hi) = match s {
        BoundScalar::Attr(a) => *env.get(a)?,
        BoundScalar::Const(v) => (*v, *v),
        BoundScalar::Func { .. } => return None,
        BoundScalar::Arith { op, lhs, rhs } => {
            let (a, b) = scalar_hull(lhs, env)?;
            let (c, d) = scalar_hull(rhs, env)?;
            match op {
                ArithOp::Add => (a + c, b + d),
                ArithOp::Sub => (a - d, b - c),
                ArithOp::Mul => {
                    let p = [a * c, a * d, b * c, b * d];
                    (
                        p.iter().copied().fold(f64::INFINITY, f64::min),
                        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    )
                }
                ArithOp::Div => {
                    // A divisor hull containing zero makes the
                    // quotient unbounded (or NaN); refuse to decide.
                    if c <= 0.0 && d >= 0.0 {
                        return None;
                    }
                    let p = [a / c, a / d, b / c, b / d];
                    (
                        p.iter().copied().fold(f64::INFINITY, f64::min),
                        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    )
                }
            }
        }
    };
    // The conservative non-finite gate: NaN constants, overflow, and
    // every other IEEE edge collapse to "no hull".
    if lo.is_finite() && hi.is_finite() {
        Some((lo, hi))
    } else {
        None
    }
}

/// Decide `lhs op rhs` over closed hulls `[a, b]` and `[c, d]`.
fn cmp_ternary(op: CmpOp, (a, b): (f64, f64), (c, d): (f64, f64)) -> Ternary {
    match op {
        CmpOp::Lt => decide(b < c, a >= d),
        CmpOp::Le => decide(b <= c, a > d),
        CmpOp::Gt => decide(a > d, b <= c),
        CmpOp::Ge => decide(a >= d, b < c),
        CmpOp::Eq => decide(a == b && c == d && a == c, b < c || d < a),
        CmpOp::Ne => !cmp_ternary(CmpOp::Eq, (a, b), (c, d)),
    }
}

fn decide(always: bool, never: bool) -> Ternary {
    if always {
        Ternary::True
    } else if never {
        Ternary::False
    } else {
        Ternary::Unknown
    }
}

/// Abstract-interpret a bound predicate over a hull environment.
///
/// Guarantee (see module docs): `True` ⇒ every row whose attribute
/// values lie inside the hulls satisfies the predicate; `False` ⇒ no
/// such row does. `Unknown` carries no information and is the sound
/// default for UDF subtrees and non-finite arithmetic.
pub fn abstract_eval(e: &BoundExpr, env: &HullEnv) -> Ternary {
    match e {
        BoundExpr::And(l, r) => abstract_eval(l, env).and(abstract_eval(r, env)),
        BoundExpr::Or(l, r) => abstract_eval(l, env).or(abstract_eval(r, env)),
        BoundExpr::Not(inner) => !abstract_eval(inner, env),
        BoundExpr::Cmp { op, lhs, rhs } => match (scalar_hull(lhs, env), scalar_hull(rhs, env)) {
            (Some(l), Some(r)) => cmp_ternary(*op, l, r),
            _ => Ternary::Unknown,
        },
        BoundExpr::InList { expr, list, negated } => {
            let Some(h) = scalar_hull(expr, env) else { return Ternary::Unknown };
            // Ternary OR of equalities. A member without a hull blocks
            // a `False` conclusion but a point-equal member still
            // proves `True` (any-semantics).
            let mut any = Ternary::False;
            for item in list {
                any = match scalar_hull(item, env) {
                    Some(m) => any.or(cmp_ternary(CmpOp::Eq, h, m)),
                    None => any.or(Ternary::Unknown),
                };
            }
            if *negated {
                !any
            } else {
                any
            }
        }
        BoundExpr::Between { expr, lo, hi, negated } => {
            let v = match (scalar_hull(expr, env), scalar_hull(lo, env), scalar_hull(hi, env)) {
                (Some(x), Some(l), Some(h)) => {
                    cmp_ternary(CmpOp::Ge, x, l).and(cmp_ternary(CmpOp::Le, x, h))
                }
                _ => Ternary::Unknown,
            };
            if *negated {
                !v
            } else {
                v
            }
        }
    }
}

/// A subexpression that prevents the abstract interpreter from ever
/// concluding anything about part of a predicate (DV303 material).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneBlocker {
    /// A UDF call: opaque to interval reasoning.
    Udf { slot: usize },
    /// A non-finite literal (`NaN`/overflowing constant) whose IEEE
    /// comparison semantics no interval captures.
    NonFiniteConst,
}

/// Collect the blockers of a predicate, in syntax order (deduplicated).
pub fn prune_blockers(e: &BoundExpr) -> Vec<PruneBlocker> {
    let mut out = Vec::new();
    walk_expr(e, &mut out);
    out.dedup();
    out
}

fn walk_expr(e: &BoundExpr, out: &mut Vec<PruneBlocker>) {
    match e {
        BoundExpr::And(l, r) | BoundExpr::Or(l, r) => {
            walk_expr(l, out);
            walk_expr(r, out);
        }
        BoundExpr::Not(inner) => walk_expr(inner, out),
        BoundExpr::Cmp { lhs, rhs, .. } => {
            walk_scalar(lhs, out);
            walk_scalar(rhs, out);
        }
        BoundExpr::InList { expr, list, .. } => {
            walk_scalar(expr, out);
            for item in list {
                walk_scalar(item, out);
            }
        }
        BoundExpr::Between { expr, lo, hi, .. } => {
            walk_scalar(expr, out);
            walk_scalar(lo, out);
            walk_scalar(hi, out);
        }
    }
}

fn walk_scalar(s: &BoundScalar, out: &mut Vec<PruneBlocker>) {
    match s {
        BoundScalar::Attr(_) => {}
        BoundScalar::Const(v) => {
            if !v.is_finite() {
                out.push(PruneBlocker::NonFiniteConst);
            }
        }
        BoundScalar::Func { slot, args } => {
            out.push(PruneBlocker::Udf { slot: *slot });
            for a in args {
                walk_scalar(a, out);
            }
        }
        BoundScalar::Arith { lhs, rhs, .. } => {
            walk_scalar(lhs, out);
            walk_scalar(rhs, out);
        }
    }
}

/// Schema attribute indices a predicate reads, sorted and deduplicated.
pub fn predicate_attrs(e: &BoundExpr) -> Vec<usize> {
    fn expr(e: &BoundExpr, out: &mut Vec<usize>) {
        match e {
            BoundExpr::And(l, r) | BoundExpr::Or(l, r) => {
                expr(l, out);
                expr(r, out);
            }
            BoundExpr::Not(i) => expr(i, out),
            BoundExpr::Cmp { lhs, rhs, .. } => {
                scalar(lhs, out);
                scalar(rhs, out);
            }
            BoundExpr::InList { expr: x, list, .. } => {
                scalar(x, out);
                list.iter().for_each(|i| scalar(i, out));
            }
            BoundExpr::Between { expr: x, lo, hi, .. } => {
                scalar(x, out);
                scalar(lo, out);
                scalar(hi, out);
            }
        }
    }
    fn scalar(s: &BoundScalar, out: &mut Vec<usize>) {
        match s {
            BoundScalar::Attr(a) => out.push(*a),
            BoundScalar::Const(_) => {}
            BoundScalar::Func { args, .. } => args.iter().for_each(|a| scalar(a, out)),
            BoundScalar::Arith { lhs, rhs, .. } => {
                scalar(lhs, out);
                scalar(rhs, out);
            }
        }
    }
    let mut out = Vec::new();
    expr(e, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse;
    use crate::udf::UdfRegistry;
    use dv_types::{Attribute, DataType, Schema};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![
                Attribute::new("REL", DataType::Short),  // 0
                Attribute::new("TIME", DataType::Int),   // 1
                Attribute::new("SOIL", DataType::Float), // 2
                Attribute::new("X", DataType::Float),    // 3
            ],
        )
        .unwrap()
    }

    fn pred(sql: &str) -> BoundExpr {
        let q = parse(sql).unwrap();
        let b = bind(&q, &schema(), &UdfRegistry::with_builtins()).unwrap();
        b.predicate.unwrap()
    }

    fn env(pairs: &[(usize, f64, f64)]) -> HullEnv {
        pairs.iter().map(|&(a, lo, hi)| (a, (lo, hi))).collect()
    }

    #[test]
    fn comparisons_decide_on_disjoint_hulls() {
        let p = pred("SELECT REL FROM T WHERE TIME < 10");
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 9.0)])), Ternary::True);
        assert_eq!(abstract_eval(&p, &env(&[(1, 10.0, 50.0)])), Ternary::False);
        assert_eq!(abstract_eval(&p, &env(&[(1, 5.0, 15.0)])), Ternary::Unknown);
    }

    #[test]
    fn equality_needs_points() {
        let p = pred("SELECT REL FROM T WHERE TIME = 7");
        assert_eq!(abstract_eval(&p, &env(&[(1, 7.0, 7.0)])), Ternary::True);
        assert_eq!(abstract_eval(&p, &env(&[(1, 8.0, 20.0)])), Ternary::False);
        assert_eq!(abstract_eval(&p, &env(&[(1, 5.0, 9.0)])), Ternary::Unknown);
    }

    #[test]
    fn unbounded_attr_is_unknown() {
        let p = pred("SELECT REL FROM T WHERE SOIL > 0.5");
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 9.0)])), Ternary::Unknown);
    }

    #[test]
    fn kleene_connectives() {
        let p = pred("SELECT REL FROM T WHERE TIME < 10 AND SOIL > 0.5");
        // False AND Unknown = False.
        assert_eq!(abstract_eval(&p, &env(&[(1, 20.0, 30.0)])), Ternary::False);
        // True AND Unknown = Unknown.
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 5.0)])), Ternary::Unknown);
        let p = pred("SELECT REL FROM T WHERE TIME < 10 OR SOIL > 0.5");
        // True OR Unknown = True.
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 5.0)])), Ternary::True);
        // False OR Unknown = Unknown.
        assert_eq!(abstract_eval(&p, &env(&[(1, 20.0, 30.0)])), Ternary::Unknown);
    }

    #[test]
    fn negation_is_exact() {
        let p = pred("SELECT REL FROM T WHERE NOT (TIME < 10)");
        assert_eq!(abstract_eval(&p, &env(&[(1, 10.0, 50.0)])), Ternary::True);
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 9.0)])), Ternary::False);
    }

    #[test]
    fn arithmetic_over_attributes_decides() {
        // attribute_ranges gives up on Arith-over-attr; the hull
        // evaluator does not — this is the bench's selective query.
        let p = pred("SELECT REL FROM T WHERE TIME * 10 <= 40");
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 4.0)])), Ternary::True);
        assert_eq!(abstract_eval(&p, &env(&[(1, 5.0, 50.0)])), Ternary::False);
        assert_eq!(abstract_eval(&p, &env(&[(1, 3.0, 6.0)])), Ternary::Unknown);
    }

    #[test]
    fn division_by_zero_spanning_interval_is_unknown() {
        let p = pred("SELECT REL FROM T WHERE 10 / TIME > 1");
        assert_eq!(abstract_eval(&p, &env(&[(1, -1.0, 1.0)])), Ternary::Unknown);
        assert_eq!(abstract_eval(&p, &env(&[(1, 20.0, 40.0)])), Ternary::False);
    }

    #[test]
    fn non_finite_constant_is_unknown_and_a_blocker() {
        // 1e999 overflows f64 parsing to +inf.
        let p = pred("SELECT REL FROM T WHERE TIME < 1e999");
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 9.0)])), Ternary::Unknown);
        assert_eq!(prune_blockers(&p), vec![PruneBlocker::NonFiniteConst]);
    }

    #[test]
    fn udf_is_unknown_and_a_blocker() {
        let p = pred("SELECT REL FROM T WHERE SPEED(X, X, X) < 30.0");
        assert_eq!(abstract_eval(&p, &env(&[(3, 0.0, 1.0)])), Ternary::Unknown);
        assert!(matches!(prune_blockers(&p)[..], [PruneBlocker::Udf { .. }]));
        // But a decidable conjunct still forces False through.
        let p = pred("SELECT REL FROM T WHERE TIME > 100 AND SPEED(X, X, X) < 30.0");
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 50.0)])), Ternary::False);
    }

    #[test]
    fn in_list_and_between() {
        let p = pred("SELECT REL FROM T WHERE REL IN (1, 3)");
        assert_eq!(abstract_eval(&p, &env(&[(0, 3.0, 3.0)])), Ternary::True);
        assert_eq!(abstract_eval(&p, &env(&[(0, 4.0, 9.0)])), Ternary::False);
        assert_eq!(abstract_eval(&p, &env(&[(0, 1.0, 2.0)])), Ternary::Unknown);
        let p = pred("SELECT REL FROM T WHERE TIME BETWEEN 10 AND 20");
        assert_eq!(abstract_eval(&p, &env(&[(1, 12.0, 18.0)])), Ternary::True);
        assert_eq!(abstract_eval(&p, &env(&[(1, 30.0, 40.0)])), Ternary::False);
        let p = pred("SELECT REL FROM T WHERE TIME NOT BETWEEN 10 AND 20");
        assert_eq!(abstract_eval(&p, &env(&[(1, 30.0, 40.0)])), Ternary::True);
        assert_eq!(abstract_eval(&p, &env(&[(1, 12.0, 18.0)])), Ternary::False);
    }

    #[test]
    fn correlation_loss_widens_not_flips() {
        // X < X is false for every row, but the hull evaluator loses
        // the correlation; it must answer Unknown, never True.
        let p = pred("SELECT REL FROM T WHERE TIME < TIME");
        assert_eq!(abstract_eval(&p, &env(&[(1, 1.0, 9.0)])), Ternary::Unknown);
        // A point hull recovers the correlation exactly.
        assert_eq!(abstract_eval(&p, &env(&[(1, 5.0, 5.0)])), Ternary::False);
    }

    #[test]
    fn predicate_attrs_walks_everything() {
        let p = pred("SELECT REL FROM T WHERE TIME < 10 AND SPEED(X, X, X) < SOIL + 1");
        assert_eq!(predicate_attrs(&p), vec![1, 2, 3]);
    }
}
