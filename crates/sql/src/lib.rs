//! # dv-sql
//!
//! The SQL subset the paper's virtualization tool accepts (Figure 1):
//!
//! ```sql
//! SELECT <data elements>
//! FROM   <dataset name>
//! WHERE  <expression> AND Filter(<data element>)
//! ```
//!
//! Supported in the `WHERE` expression: comparison operators
//! (`< <= > >= = != <>`), `IN (...)` lists, `BETWEEN ... AND ...`,
//! boolean connectives (`AND`, `OR`, `NOT`), scalar arithmetic
//! (`+ - * /`, unary minus), and calls to registered user-defined
//! filter functions such as `SPEED(OILVX, OILVY, OILVZ) <= 30.0`.
//! Joins, aggregations and `GROUP BY` are intentionally rejected —
//! the paper's goal is *subsetting*, not general query processing.
//!
//! Pipeline: [`parse`] → [`bind::bind`] (resolve names against a
//! [`dv_types::Schema`] + [`udf::UdfRegistry`]) → either
//! [`eval`] (row-at-a-time predicate evaluation in the filtering
//! service) or [`analysis::attribute_ranges`] (sound per-attribute
//! interval extraction used by the indexing service for pruning).

pub mod analysis;
pub mod ast;
pub mod bind;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod ternary;
pub mod token;
pub mod udf;

pub use ast::{AggFunc, ArithOp, CmpOp, Expr, Query, Scalar, SelectItem, SelectList};
pub use bind::{bind, AggOutput, BoundAgg, BoundAggSpec, BoundExpr, BoundQuery, BoundScalar};
pub use parser::parse;
pub use udf::UdfRegistry;
