//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! query     := SELECT select_list FROM ident [WHERE or_expr]
//!              [GROUP BY ident (',' ident)*] [';']
//! select_list := '*' | select_item (',' select_item)*
//! select_item := ident | agg_func '(' ('*' | ident) ')'
//! agg_func  := COUNT | SUM | MIN | MAX | AVG
//! or_expr   := and_expr (OR and_expr)*
//! and_expr  := not_expr (AND not_expr)*
//! not_expr  := NOT not_expr | predicate
//! predicate := scalar ( cmp_op scalar
//!                     | [NOT] IN '(' scalar (',' scalar)* ')'
//!                     | [NOT] BETWEEN scalar AND scalar )
//!            | '(' or_expr ')'          -- resolved by lookahead
//! scalar    := term (('+'|'-') term)*
//! term      := factor (('*'|'/') factor)*
//! factor    := ['-'] ( number | ident ['(' args ')'] | '(' scalar ')' )
//! ```
//!
//! The grammatical wrinkle is `(`: it may open a parenthesized boolean
//! expression or a parenthesized scalar. We resolve it by attempting a
//! boolean parse and falling back to scalar (bounded backtracking over
//! the token buffer; queries are short so this is never hot).

use dv_types::{DvError, Result};

use crate::ast::{AggFunc, ArithOp, CmpOp, Expr, Query, Scalar, SelectItem, SelectList};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse one query.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> DvError {
        let t = &self.tokens[self.pos];
        DvError::SqlParse { message: message.into(), line: t.line, column: t.column }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect(TokenKind::Select)?;
        let select = self.select_list()?;
        self.expect(TokenKind::From)?;
        let dataset = self.ident()?;
        let predicate = if self.eat(TokenKind::Where) { Some(self.or_expr()?) } else { None };
        let group_by = if self.eat(TokenKind::Group) {
            self.expect(TokenKind::By)?;
            let mut cols = vec![self.ident()?];
            while self.eat(TokenKind::Comma) {
                cols.push(self.ident()?);
            }
            cols
        } else {
            Vec::new()
        };
        self.eat(TokenKind::Semi);
        Ok(Query { select, dataset, predicate, group_by })
    }

    fn expect_end(&mut self) -> Result<()> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input `{}`", self.peek())))
        }
    }

    fn select_list(&mut self) -> Result<SelectList> {
        if self.eat(TokenKind::Star) {
            return Ok(SelectList::All);
        }
        let mut cols = vec![self.select_item()?];
        while self.eat(TokenKind::Comma) {
            cols.push(self.select_item()?);
        }
        Ok(SelectList::Columns(cols))
    }

    /// One select-list item: a plain column, or an aggregate call
    /// `COUNT(*)` / `COUNT(a)` / `SUM|MIN|MAX|AVG(a)`.
    fn select_item(&mut self) -> Result<SelectItem> {
        let name = self.ident()?;
        let Some(func) = AggFunc::from_name(&name) else {
            return Ok(SelectItem::Column(name));
        };
        if !self.eat(TokenKind::LParen) {
            return Err(self.err(format!(
                "aggregate `{name}` requires parentheses: write `{func}(attr)`{}",
                if func == AggFunc::Count { " or `COUNT(*)`" } else { "" }
            )));
        }
        let arg = if self.eat(TokenKind::Star) {
            if func != AggFunc::Count {
                return Err(self.err(format!("`{func}(*)` is not valid; only `COUNT(*)` is")));
            }
            None
        } else {
            Some(self.ident()?)
        };
        self.expect(TokenKind::RParen)?;
        Ok(SelectItem::Agg { func, arg })
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat(TokenKind::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(TokenKind::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        // `(` could start a boolean group or a scalar; try boolean first
        // with backtracking.
        if *self.peek() == TokenKind::LParen {
            let save = self.pos;
            self.advance();
            if let Ok(inner) = self.or_expr() {
                if self.eat(TokenKind::RParen) {
                    // `(a > 1)` parses as boolean; but `(X + 1) > 2`
                    // has a comparison *after* the group — only accept
                    // the boolean reading when no comparison follows.
                    if !self.at_predicate_tail() {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        let lhs = self.scalar()?;
        self.predicate_tail(lhs)
    }

    /// True when the upcoming token continues a comparison/IN/BETWEEN.
    fn at_predicate_tail(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Lt
                | TokenKind::Le
                | TokenKind::Gt
                | TokenKind::Ge
                | TokenKind::Eq
                | TokenKind::Ne
                | TokenKind::In
                | TokenKind::Between
        ) || (*self.peek() == TokenKind::Not
            && matches!(self.peek2(), TokenKind::In | TokenKind::Between))
    }

    fn predicate_tail(&mut self, lhs: Scalar) -> Result<Expr> {
        let negated = if *self.peek() == TokenKind::Not
            && matches!(self.peek2(), TokenKind::In | TokenKind::Between)
        {
            self.advance();
            true
        } else {
            false
        };
        match self.peek().clone() {
            TokenKind::In => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let mut list = vec![self.scalar()?];
                while self.eat(TokenKind::Comma) {
                    list.push(self.scalar()?);
                }
                self.expect(TokenKind::RParen)?;
                Ok(Expr::InList { expr: lhs, list, negated })
            }
            TokenKind::Between => {
                self.advance();
                let lo = self.scalar()?;
                self.expect(TokenKind::And)?;
                let hi = self.scalar()?;
                Ok(Expr::Between { expr: lhs, lo, hi, negated })
            }
            TokenKind::Lt
            | TokenKind::Le
            | TokenKind::Gt
            | TokenKind::Ge
            | TokenKind::Eq
            | TokenKind::Ne => {
                let op = match self.advance() {
                    TokenKind::Lt => CmpOp::Lt,
                    TokenKind::Le => CmpOp::Le,
                    TokenKind::Gt => CmpOp::Gt,
                    TokenKind::Ge => CmpOp::Ge,
                    TokenKind::Eq => CmpOp::Eq,
                    TokenKind::Ne => CmpOp::Ne,
                    _ => unreachable!(),
                };
                let rhs = self.scalar()?;
                Ok(Expr::Cmp { op, lhs, rhs })
            }
            other => Err(self.err(format!(
                "expected comparison, IN or BETWEEN after scalar expression, found `{other}`"
            ))),
        }
    }

    fn scalar(&mut self) -> Result<Scalar> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.term()?;
            lhs = Scalar::Arith { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Scalar> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.factor()?;
            lhs = Scalar::Arith { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Scalar> {
        if self.eat(TokenKind::Minus) {
            // Fold unary minus over literals so `-3` is a literal, not
            // Neg(3) — keeps Display/parse round-trips stable.
            return Ok(match self.factor()? {
                Scalar::IntLit(v) => Scalar::IntLit(-v),
                Scalar::FloatLit(v) => Scalar::FloatLit(-v),
                other => Scalar::Neg(Box::new(other)),
            });
        }
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.advance();
                Ok(Scalar::IntLit(v))
            }
            TokenKind::FloatLit(v) => {
                self.advance();
                Ok(Scalar::FloatLit(v))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.eat(TokenKind::LParen) {
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        args.push(self.scalar()?);
                        while self.eat(TokenKind::Comma) {
                            args.push(self.scalar()?);
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Scalar::Func { name, args })
                } else {
                    Ok(Scalar::Column(name))
                }
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.scalar()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected scalar expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure1_query() {
        // The IPARS example query from Figure 1 of the paper.
        let q = parse(
            "SELECT * FROM IparsData WHERE RID in (0,6,26,27) AND TIME >= 1000 AND \
             TIME <= 1100 AND SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= 30.0;",
        )
        .unwrap();
        assert_eq!(q.dataset, "IparsData");
        assert_eq!(q.select, SelectList::All);
        let p = q.predicate.unwrap();
        // Left-associative ANDs: ((((IN AND >=) AND <=) AND >=) AND <=)
        let mut count = 0;
        let mut cur = &p;
        while let Expr::And(l, _) = cur {
            count += 1;
            cur = l;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn parse_projection() {
        let q = parse("SELECT soil, sgas FROM Ipars").unwrap();
        assert_eq!(
            q.select,
            SelectList::Columns(vec![SelectItem::column("soil"), SelectItem::column("sgas")])
        );
        assert!(q.predicate.is_none());
        assert!(q.group_by.is_empty());
    }

    #[test]
    fn parse_aggregates_and_group_by() {
        let q = parse(
            "SELECT REL, COUNT(*), avg(SOIL), Max(TIME) FROM IparsData \
             WHERE TIME > 3 GROUP BY REL, TIME",
        )
        .unwrap();
        assert_eq!(
            q.select,
            SelectList::Columns(vec![
                SelectItem::column("REL"),
                SelectItem::Agg { func: AggFunc::Count, arg: None },
                SelectItem::Agg { func: AggFunc::Avg, arg: Some("SOIL".into()) },
                SelectItem::Agg { func: AggFunc::Max, arg: Some("TIME".into()) },
            ])
        );
        assert_eq!(q.group_by, vec!["REL".to_string(), "TIME".to_string()]);
        assert!(q.predicate.is_some());
    }

    #[test]
    fn parse_global_aggregate_without_group_by() {
        let q = parse("SELECT COUNT(SOIL), SUM(SOIL) FROM T").unwrap();
        assert_eq!(
            q.select,
            SelectList::Columns(vec![
                SelectItem::Agg { func: AggFunc::Count, arg: Some("SOIL".into()) },
                SelectItem::Agg { func: AggFunc::Sum, arg: Some("SOIL".into()) },
            ])
        );
        assert!(q.group_by.is_empty());
    }

    #[test]
    fn reject_star_arg_outside_count() {
        let e = parse("SELECT SUM(*) FROM T").unwrap_err().to_string();
        assert!(e.contains("COUNT(*)"), "{e}");
    }

    #[test]
    fn reject_group_without_by() {
        assert!(parse("SELECT REL FROM T GROUP REL").is_err());
    }

    #[test]
    fn reject_empty_group_by() {
        assert!(parse("SELECT REL FROM T GROUP BY").is_err());
    }

    #[test]
    fn parse_between() {
        let q = parse("SELECT * FROM T WHERE TIME BETWEEN 10 AND 20").unwrap();
        match q.predicate.unwrap() {
            Expr::Between { negated: false, .. } => {}
            other => panic!("expected BETWEEN, got {other:?}"),
        }
    }

    #[test]
    fn parse_not_in() {
        let q = parse("SELECT * FROM T WHERE REL NOT IN (1, 2)").unwrap();
        match q.predicate.unwrap() {
            Expr::InList { negated: true, list, .. } => assert_eq!(list.len(), 2),
            other => panic!("expected NOT IN, got {other:?}"),
        }
    }

    #[test]
    fn parse_boolean_grouping() {
        let q = parse("SELECT * FROM T WHERE (A > 1 OR B < 2) AND C = 3").unwrap();
        match q.predicate.unwrap() {
            Expr::And(l, _) => match *l {
                Expr::Or(..) => {}
                other => panic!("expected OR group, got {other:?}"),
            },
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn parse_parenthesized_scalar_then_cmp() {
        // `(X + 1) > 2` must not be mistaken for a boolean group.
        let q = parse("SELECT * FROM T WHERE (X + 1) > 2").unwrap();
        match q.predicate.unwrap() {
            Expr::Cmp { op: CmpOp::Gt, lhs: Scalar::Arith { .. }, .. } => {}
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn parse_nested_parens_boolean() {
        let q = parse("SELECT * FROM T WHERE ((A > 1))").unwrap();
        assert!(matches!(q.predicate.unwrap(), Expr::Cmp { .. }));
    }

    #[test]
    fn parse_udf_no_args() {
        // Figure 8 query 4 writes `Speed() < 30`.
        let q = parse("SELECT * FROM IPARS WHERE TIME>1000 AND Speed() < 30").unwrap();
        match q.predicate.unwrap() {
            Expr::And(_, r) => match *r {
                Expr::Cmp { lhs: Scalar::Func { ref name, ref args }, .. } => {
                    assert_eq!(name, "Speed");
                    assert!(args.is_empty());
                }
                other => panic!("got {other:?}"),
            },
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let q = parse("SELECT * FROM T WHERE A + 2 * B < 10").unwrap();
        match q.predicate.unwrap() {
            Expr::Cmp { lhs: Scalar::Arith { op: ArithOp::Add, rhs, .. }, .. } => {
                assert!(matches!(*rhs, Scalar::Arith { op: ArithOp::Mul, .. }));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn parse_unary_minus() {
        let q = parse("SELECT * FROM T WHERE X > -5").unwrap();
        match q.predicate.unwrap() {
            Expr::Cmp { rhs: Scalar::IntLit(-5), .. } => {}
            other => panic!("got {other:?}"),
        }
        // Unary minus over a column stays symbolic.
        let q = parse("SELECT * FROM T WHERE X > -Y").unwrap();
        match q.predicate.unwrap() {
            Expr::Cmp { rhs: Scalar::Neg(inner), .. } => {
                assert_eq!(*inner, Scalar::Column("Y".into()));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn reject_trailing_garbage() {
        assert!(parse("SELECT * FROM T WHERE A > 1 GROUP").is_err());
    }

    #[test]
    fn reject_missing_from() {
        assert!(parse("SELECT *").is_err());
    }

    #[test]
    fn reject_bare_aggregate_keyword() {
        let e = parse("SELECT COUNT FROM T").unwrap_err().to_string();
        assert!(e.contains("parentheses"), "{e}");
    }

    #[test]
    fn reject_empty_where() {
        assert!(parse("SELECT * FROM T WHERE").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let inputs = [
            "SELECT * FROM T WHERE A > 1 AND B <= 2.5",
            "SELECT X, Y FROM T WHERE X IN (1, 2, 3) OR NOT Y = 0",
            "SELECT * FROM T WHERE SPEED(VX, VY, VZ) < 30.0",
            "SELECT * FROM T WHERE A BETWEEN 1 AND 2 AND B NOT BETWEEN 3 AND 4",
            "SELECT A, COUNT(*), SUM(B), MIN(B), MAX(B), AVG(B) FROM T GROUP BY A",
            "SELECT COUNT(*) FROM T WHERE A > 1",
            "SELECT A, B FROM T WHERE A > 1 GROUP BY A, B",
        ];
        for q in inputs {
            let ast1 = parse(q).unwrap();
            let ast2 = parse(&ast1.to_string()).unwrap();
            assert_eq!(ast1, ast2, "roundtrip failed for {q}");
        }
    }
}
