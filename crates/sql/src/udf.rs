//! User-defined filter functions.
//!
//! The paper's canonical query shape allows `Filter(<data element>)`
//! terms — "application-specific and user-defined filter operations
//! that are difficult to express with simple comparison operations"
//! (e.g. `SPEED(OILVX, OILVY, OILVZ) <= 30.0` for Ipars, or
//! `DISTANCE(X, Y, Z) < 1000` for Titan). A [`UdfRegistry`] maps
//! function names to numeric implementations; the binder resolves call
//! sites to registry slots so per-row evaluation is a direct indexed
//! call.

use std::collections::HashMap;
use std::sync::Arc;

use dv_types::{DvError, Result};

/// Implementation of a user-defined scalar function over numeric views
/// of attribute values.
pub type UdfFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

struct UdfEntry {
    name: String,
    func: UdfFn,
    /// Exact argument count the function requires, or `None` for
    /// variadic functions.
    arity: Option<usize>,
    /// Attribute names substituted when the query writes a bare call
    /// like `Speed()` (Figure 8 query 4 relies on this: the UDF knows
    /// its own inputs).
    implicit_args: Vec<String>,
}

/// Registry of user-defined filter functions. Cheap to clone is not
/// required — services share it behind an `Arc`.
#[derive(Default)]
pub struct UdfRegistry {
    entries: Vec<UdfEntry>,
    by_name: HashMap<String, usize>,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// A registry pre-loaded with the functions the paper's two
    /// applications use:
    ///
    /// * `SPEED(vx, vy, vz)` — Euclidean magnitude of a velocity
    ///   vector (oil reservoir bypass analysis);
    /// * `DISTANCE(x, y, z)` — Euclidean distance from the origin
    ///   (satellite region queries).
    pub fn with_builtins() -> UdfRegistry {
        let mut r = UdfRegistry::new();
        r.register("SPEED", Some(3), |args| {
            (args[0] * args[0] + args[1] * args[1] + args[2] * args[2]).sqrt()
        });
        r.register("DISTANCE", Some(3), |args| {
            (args[0] * args[0] + args[1] * args[1] + args[2] * args[2]).sqrt()
        });
        r
    }

    /// Register `name` with the given arity (`None` = variadic).
    /// Re-registering a name replaces the previous implementation.
    pub fn register(
        &mut self,
        name: &str,
        arity: Option<usize>,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) {
        self.register_with_implicit_args(name, arity, Vec::new(), f)
    }

    /// Register a function together with the attribute names that are
    /// implied when the query calls it with no arguments.
    pub fn register_with_implicit_args(
        &mut self,
        name: &str,
        arity: Option<usize>,
        implicit_args: Vec<String>,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) {
        let upper = name.to_ascii_uppercase();
        let entry = UdfEntry {
            name: upper.clone(),
            func: Arc::new(f),
            arity,
            implicit_args: implicit_args.iter().map(|a| a.to_ascii_uppercase()).collect(),
        };
        match self.by_name.get(&upper) {
            Some(&slot) => self.entries[slot] = entry,
            None => {
                self.by_name.insert(upper, self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// Resolve a call site. Checks the name exists and the argument
    /// count is compatible; returns the slot for [`UdfRegistry::call`].
    pub fn resolve(&self, name: &str, arg_count: usize) -> Result<usize> {
        let upper = name.to_ascii_uppercase();
        let slot = *self
            .by_name
            .get(&upper)
            .ok_or_else(|| DvError::Binding(format!("unknown user-defined function `{name}`")))?;
        if let Some(arity) = self.entries[slot].arity {
            if arg_count != arity {
                return Err(DvError::Binding(format!(
                    "function `{upper}` expects {arity} argument(s), got {arg_count}"
                )));
            }
        }
        Ok(slot)
    }

    /// The implicit argument attribute names of a function (empty when
    /// none were registered). Used by the binder for bare `F()` calls.
    pub fn implicit_args(&self, name: &str) -> Result<&[String]> {
        let upper = name.to_ascii_uppercase();
        let slot = *self
            .by_name
            .get(&upper)
            .ok_or_else(|| DvError::Binding(format!("unknown user-defined function `{name}`")))?;
        Ok(&self.entries[slot].implicit_args)
    }

    /// Invoke the function at `slot`.
    #[inline]
    pub fn call(&self, slot: usize, args: &[f64]) -> f64 {
        (self.entries[slot].func)(args)
    }

    /// Name of the function at `slot` (for plan rendering).
    pub fn name_of(&self, slot: usize) -> &str {
        &self.entries[slot].name
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_speed() {
        let r = UdfRegistry::with_builtins();
        let slot = r.resolve("speed", 3).unwrap();
        assert_eq!(r.call(slot, &[3.0, 4.0, 0.0]), 5.0);
        assert_eq!(r.name_of(slot), "SPEED");
    }

    #[test]
    fn arity_enforced() {
        let r = UdfRegistry::with_builtins();
        assert!(r.resolve("SPEED", 2).is_err());
        assert!(r.resolve("DISTANCE", 3).is_ok());
    }

    #[test]
    fn unknown_function_rejected() {
        let r = UdfRegistry::with_builtins();
        assert!(r.resolve("FROB", 1).is_err());
    }

    #[test]
    fn variadic_accepts_any_count() {
        let mut r = UdfRegistry::new();
        r.register("SUMALL", None, |a| a.iter().sum());
        assert!(r.resolve("SUMALL", 0).is_ok());
        let slot = r.resolve("SUMALL", 5).unwrap();
        assert_eq!(r.call(slot, &[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = UdfRegistry::new();
        r.register("F", Some(1), |a| a[0]);
        r.register("F", Some(1), |a| a[0] * 2.0);
        let slot = r.resolve("F", 1).unwrap();
        assert_eq!(r.call(slot, &[3.0]), 6.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn implicit_args_for_bare_calls() {
        let mut r = UdfRegistry::new();
        r.register_with_implicit_args(
            "Speed",
            Some(3),
            vec!["oilvx".into(), "oilvy".into(), "oilvz".into()],
            |a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt(),
        );
        assert_eq!(r.implicit_args("SPEED").unwrap(), &["OILVX", "OILVY", "OILVZ"]);
        assert!(r.implicit_args("NOPE").is_err());
    }
}
