//! Predicate evaluation — the core of the filtering service.
//!
//! Rows handed to the filter are *working rows*: they contain the
//! attributes in [`crate::bind::BoundQuery::needed_attrs`] order, not
//! full schema order. An [`EvalContext`] carries the schema-index →
//! row-position mapping plus the UDF registry, both fixed per query, so
//! the per-row path is allocation-free except for UDF argument buffers
//! (reused via a small stack array for the common arities).
//!
//! Two evaluators share one context:
//!
//! * [`EvalContext::eval`] — row-at-a-time, over `&[Value]` working
//!   rows (the legacy path, the oracle in differential tests, and the
//!   minidb engine);
//! * [`EvalContext::eval_block`] — column-at-a-time over a
//!   [`ColumnBlock`]: comparisons run as typed kernels producing
//!   selection [`Bitmap`]s, boolean connectives combine bitmaps
//!   word-wise, and only subtrees containing UDF calls fall back to
//!   row-at-a-time evaluation — restricted to the rows the surrounding
//!   conjuncts have not already rejected.

use dv_types::{Bitmap, ColumnBlock, ColumnData, ColumnGen, Value};

use crate::ast::CmpOp;
use crate::bind::{BoundExpr, BoundScalar};
use crate::udf::UdfRegistry;

/// Per-query evaluation context.
pub struct EvalContext<'a> {
    /// `positions[schema_attr_index]` = position of that attribute in
    /// the working row, or `usize::MAX` when absent. Built by
    /// [`EvalContext::new`].
    positions: Vec<usize>,
    udfs: &'a UdfRegistry,
}

impl<'a> EvalContext<'a> {
    /// Build a context for working rows holding `working_attrs` (schema
    /// attribute indices in row order) out of a schema with
    /// `schema_len` attributes.
    pub fn new(schema_len: usize, working_attrs: &[usize], udfs: &'a UdfRegistry) -> Self {
        let mut positions = vec![usize::MAX; schema_len];
        for (pos, &attr) in working_attrs.iter().enumerate() {
            positions[attr] = pos;
        }
        EvalContext { positions, udfs }
    }

    /// Position of schema attribute `attr` within working rows.
    /// Panics if the attribute is not part of the working set — that is
    /// a planning bug, not a data condition.
    #[inline]
    pub fn position(&self, attr: usize) -> usize {
        let p = self.positions[attr];
        debug_assert!(p != usize::MAX, "attribute {attr} missing from working row");
        p
    }

    /// Evaluate a boolean expression on a working row.
    pub fn eval(&self, expr: &BoundExpr, row: &[Value]) -> bool {
        match expr {
            BoundExpr::And(l, r) => self.eval(l, row) && self.eval(r, row),
            BoundExpr::Or(l, r) => self.eval(l, row) || self.eval(r, row),
            BoundExpr::Not(i) => !self.eval(i, row),
            BoundExpr::Cmp { op, lhs, rhs } => {
                op.apply(self.scalar(lhs, row), self.scalar(rhs, row))
            }
            BoundExpr::InList { expr, list, negated } => {
                let v = self.scalar(expr, row);
                let found = list.iter().any(|item| self.scalar(item, row) == v);
                found != *negated
            }
            BoundExpr::Between { expr, lo, hi, negated } => {
                let v = self.scalar(expr, row);
                let inside = v >= self.scalar(lo, row) && v <= self.scalar(hi, row);
                inside != *negated
            }
        }
    }

    /// Evaluate a scalar expression on a working row.
    pub fn scalar(&self, s: &BoundScalar, row: &[Value]) -> f64 {
        match s {
            BoundScalar::Attr(a) => row[self.position(*a)].as_f64(),
            BoundScalar::Const(c) => *c,
            BoundScalar::Func { slot, args } => {
                // Common UDF arities are tiny; avoid heap traffic with a
                // stack buffer when possible.
                if args.len() <= 8 {
                    let mut buf = [0.0f64; 8];
                    for (i, a) in args.iter().enumerate() {
                        buf[i] = self.scalar(a, row);
                    }
                    self.udfs.call(*slot, &buf[..args.len()])
                } else {
                    let vals: Vec<f64> = args.iter().map(|a| self.scalar(a, row)).collect();
                    self.udfs.call(*slot, &vals)
                }
            }
            BoundScalar::Arith { op, lhs, rhs } => {
                op.apply(self.scalar(lhs, row), self.scalar(rhs, row))
            }
        }
    }

    /// Evaluate a boolean expression over every row of a columnar
    /// block, returning the selection bitmap.
    pub fn eval_block(&self, expr: &BoundExpr, block: &ColumnBlock) -> Bitmap {
        let mask = Bitmap::new_true(block.len());
        self.eval_masked(expr, block, &mask)
    }

    /// Masked vectorized evaluation. The result is exact for rows set
    /// in `mask`; bits outside the mask may be stale (they are never
    /// combined in a way that lets them leak into masked rows — the
    /// standard short-circuit-masking argument).
    fn eval_masked(&self, expr: &BoundExpr, block: &ColumnBlock, mask: &Bitmap) -> Bitmap {
        match expr {
            BoundExpr::And(l, r) => {
                // Evaluate the UDF-free side first so the expensive
                // row-fallback side only sees surviving rows.
                let (first, second) =
                    if expr_has_func(l) && !expr_has_func(r) { (&**r, &**l) } else { (&**l, &**r) };
                let mut a = self.eval_masked(first, block, mask);
                a.and(mask);
                let b = self.eval_masked(second, block, &a);
                a.and(&b);
                a
            }
            BoundExpr::Or(l, r) => {
                let (first, second) =
                    if expr_has_func(l) && !expr_has_func(r) { (&**r, &**l) } else { (&**l, &**r) };
                let a = self.eval_masked(first, block, mask);
                // Only rows the first branch rejected still matter.
                let mut m2 = a.clone();
                m2.not();
                m2.and(mask);
                let mut b = self.eval_masked(second, block, &m2);
                b.and(&m2);
                let mut out = a;
                out.and(mask);
                out.or(&b);
                out
            }
            BoundExpr::Not(inner) => {
                let mut r = self.eval_masked(inner, block, mask);
                r.not();
                r
            }
            BoundExpr::Cmp { op, lhs, rhs } => {
                if scalar_has_func(lhs) || scalar_has_func(rhs) {
                    return self.fallback_rows(expr, block, mask);
                }
                if let (BoundScalar::Attr(a), BoundScalar::Const(c)) = (lhs, rhs) {
                    return self.cmp_attr_const(*op, *a, *c, block);
                }
                if let (BoundScalar::Const(c), BoundScalar::Attr(a)) = (lhs, rhs) {
                    return self.cmp_attr_const(swap_operands(*op), *a, *c, block);
                }
                let l = self.scalar_col(lhs, block);
                let r = self.scalar_col(rhs, block);
                let mut bm = Bitmap::new_false(block.len());
                for i in 0..block.len() {
                    if op.apply(l.at(i), r.at(i)) {
                        bm.set(i);
                    }
                }
                bm
            }
            BoundExpr::InList { expr: e, list, negated } => {
                if scalar_has_func(e) || list.iter().any(scalar_has_func) {
                    return self.fallback_rows(expr, block, mask);
                }
                let v = self.scalar_col(e, block);
                let items: Vec<ScalarCol> =
                    list.iter().map(|s| self.scalar_col(s, block)).collect();
                let mut bm = Bitmap::new_false(block.len());
                for i in 0..block.len() {
                    let x = v.at(i);
                    if items.iter().any(|it| it.at(i) == x) != *negated {
                        bm.set(i);
                    }
                }
                bm
            }
            BoundExpr::Between { expr: e, lo, hi, negated } => {
                if scalar_has_func(e) || scalar_has_func(lo) || scalar_has_func(hi) {
                    return self.fallback_rows(expr, block, mask);
                }
                let v = self.scalar_col(e, block);
                let lo = self.scalar_col(lo, block);
                let hi = self.scalar_col(hi, block);
                let mut bm = Bitmap::new_false(block.len());
                for i in 0..block.len() {
                    let x = v.at(i);
                    if (x >= lo.at(i) && x <= hi.at(i)) != *negated {
                        bm.set(i);
                    }
                }
                bm
            }
        }
    }

    /// Typed comparison kernel for the dominant `ATTR op CONST` shape:
    /// one pass over the native column vector (the `op` and constant
    /// are loop-invariant), with constant lazy runs decided once per
    /// run instead of once per row.
    fn cmp_attr_const(&self, op: CmpOp, attr: usize, c: f64, block: &ColumnBlock) -> Bitmap {
        let col = &block.columns[self.position(attr)];
        let mut bm = Bitmap::new_false(block.len());
        let (data, runs) = col.parts();
        macro_rules! scan {
            ($v:expr) => {
                for (i, x) in $v.iter().enumerate() {
                    if op.apply(f64::from(*x), c) {
                        bm.set(i);
                    }
                }
            };
        }
        match data {
            ColumnData::Char(v) => scan!(v),
            ColumnData::Short(v) => scan!(v),
            ColumnData::Int(v) => scan!(v),
            ColumnData::Float(v) => scan!(v),
            ColumnData::Double(v) => scan!(v),
            ColumnData::Long(v) => {
                for (i, x) in v.iter().enumerate() {
                    if op.apply(*x as f64, c) {
                        bm.set(i);
                    }
                }
            }
        }
        for r in runs {
            match r.gen {
                ColumnGen::Const(v) => {
                    if op.apply(v.as_f64(), c) {
                        bm.set_range(r.start, r.start + r.len);
                    }
                }
                ColumnGen::Affine { .. } => {
                    for k in 0..r.len {
                        if op.apply(r.gen.value_at(k, col.dtype()).as_f64(), c) {
                            bm.set(r.start + k);
                        }
                    }
                }
            }
        }
        bm
    }

    /// Evaluate a UDF-free scalar over the whole block.
    fn scalar_col(&self, s: &BoundScalar, block: &ColumnBlock) -> ScalarCol {
        match s {
            BoundScalar::Attr(a) => ScalarCol::Vec(block.columns[self.position(*a)].f64_vec()),
            BoundScalar::Const(c) => ScalarCol::Const(*c),
            BoundScalar::Arith { op, lhs, rhs } => {
                let l = self.scalar_col(lhs, block);
                let r = self.scalar_col(rhs, block);
                match (l, r) {
                    (ScalarCol::Const(a), ScalarCol::Const(b)) => ScalarCol::Const(op.apply(a, b)),
                    (l, r) => {
                        let mut out = Vec::with_capacity(block.len());
                        for i in 0..block.len() {
                            out.push(op.apply(l.at(i), r.at(i)));
                        }
                        ScalarCol::Vec(out)
                    }
                }
            }
            BoundScalar::Func { .. } => {
                unreachable!("vectorized path routes UDF subtrees to the row fallback")
            }
        }
    }

    /// Row-at-a-time fallback for subtrees containing UDF calls:
    /// evaluates only the rows still set in `mask`.
    fn fallback_rows(&self, expr: &BoundExpr, block: &ColumnBlock, mask: &Bitmap) -> Bitmap {
        let mut bm = Bitmap::new_false(block.len());
        for i in mask.indices() {
            if self.eval_at(expr, block, i as usize) {
                bm.set(i as usize);
            }
        }
        bm
    }

    /// Evaluate a boolean expression on one row of a columnar block.
    pub fn eval_at(&self, expr: &BoundExpr, block: &ColumnBlock, i: usize) -> bool {
        match expr {
            BoundExpr::And(l, r) => self.eval_at(l, block, i) && self.eval_at(r, block, i),
            BoundExpr::Or(l, r) => self.eval_at(l, block, i) || self.eval_at(r, block, i),
            BoundExpr::Not(e) => !self.eval_at(e, block, i),
            BoundExpr::Cmp { op, lhs, rhs } => {
                op.apply(self.scalar_at(lhs, block, i), self.scalar_at(rhs, block, i))
            }
            BoundExpr::InList { expr, list, negated } => {
                let v = self.scalar_at(expr, block, i);
                let found = list.iter().any(|item| self.scalar_at(item, block, i) == v);
                found != *negated
            }
            BoundExpr::Between { expr, lo, hi, negated } => {
                let v = self.scalar_at(expr, block, i);
                let inside = v >= self.scalar_at(lo, block, i) && v <= self.scalar_at(hi, block, i);
                inside != *negated
            }
        }
    }

    /// Evaluate a scalar expression on one row of a columnar block.
    pub fn scalar_at(&self, s: &BoundScalar, block: &ColumnBlock, i: usize) -> f64 {
        match s {
            BoundScalar::Attr(a) => block.columns[self.position(*a)].value_at(i).as_f64(),
            BoundScalar::Const(c) => *c,
            BoundScalar::Func { slot, args } => {
                if args.len() <= 8 {
                    let mut buf = [0.0f64; 8];
                    for (k, a) in args.iter().enumerate() {
                        buf[k] = self.scalar_at(a, block, i);
                    }
                    self.udfs.call(*slot, &buf[..args.len()])
                } else {
                    let vals: Vec<f64> = args.iter().map(|a| self.scalar_at(a, block, i)).collect();
                    self.udfs.call(*slot, &vals)
                }
            }
            BoundScalar::Arith { op, lhs, rhs } => {
                op.apply(self.scalar_at(lhs, block, i), self.scalar_at(rhs, block, i))
            }
        }
    }
}

/// A scalar evaluated over a block: per-row values or one constant.
enum ScalarCol {
    Vec(Vec<f64>),
    Const(f64),
}

impl ScalarCol {
    #[inline]
    fn at(&self, i: usize) -> f64 {
        match self {
            ScalarCol::Vec(v) => v[i],
            ScalarCol::Const(c) => *c,
        }
    }
}

/// Swap comparison operands: `a op b` ⇔ `b swap(op) a`.
fn swap_operands(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// True when the expression contains a UDF call anywhere — such
/// subtrees force the row-at-a-time fallback (see DV103 in dv-lint).
pub fn expr_has_func(expr: &BoundExpr) -> bool {
    match expr {
        BoundExpr::And(l, r) | BoundExpr::Or(l, r) => expr_has_func(l) || expr_has_func(r),
        BoundExpr::Not(e) => expr_has_func(e),
        BoundExpr::Cmp { lhs, rhs, .. } => scalar_has_func(lhs) || scalar_has_func(rhs),
        BoundExpr::InList { expr, list, .. } => {
            scalar_has_func(expr) || list.iter().any(scalar_has_func)
        }
        BoundExpr::Between { expr, lo, hi, .. } => {
            scalar_has_func(expr) || scalar_has_func(lo) || scalar_has_func(hi)
        }
    }
}

/// True when the scalar contains a UDF call anywhere.
pub fn scalar_has_func(s: &BoundScalar) -> bool {
    match s {
        BoundScalar::Attr(_) | BoundScalar::Const(_) => false,
        BoundScalar::Func { .. } => true,
        BoundScalar::Arith { lhs, rhs, .. } => scalar_has_func(lhs) || scalar_has_func(rhs),
    }
}

/// Evaluate `op` between two values using numeric comparison — shared
/// helper for engines (minidb) that filter full-schema rows directly.
#[inline]
pub fn compare_values(op: CmpOp, l: &Value, r: &Value) -> bool {
    op.apply(l.as_f64(), r.as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse;
    use crate::udf::UdfRegistry;
    use dv_types::{Attribute, DataType, Schema};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![
                Attribute::new("A", DataType::Int),
                Attribute::new("B", DataType::Float),
                Attribute::new("C", DataType::Double),
            ],
        )
        .unwrap()
    }

    /// Bind `sql` and evaluate its predicate against a full-schema row.
    fn run(sql: &str, row: &[Value]) -> bool {
        let q = parse(sql).unwrap();
        let udfs = UdfRegistry::with_builtins();
        let b = bind(&q, &schema(), &udfs).unwrap();
        let working: Vec<usize> = (0..schema().len()).collect();
        let cx = EvalContext::new(schema().len(), &working, &udfs);
        cx.eval(b.predicate.as_ref().unwrap(), row)
    }

    #[test]
    fn comparisons() {
        let row = vec![Value::Int(5), Value::Float(0.5), Value::Double(2.0)];
        assert!(run("SELECT * FROM T WHERE A > 4", &row));
        assert!(!run("SELECT * FROM T WHERE A > 5", &row));
        assert!(run("SELECT * FROM T WHERE A >= 5 AND B < 1.0", &row));
        assert!(run("SELECT * FROM T WHERE A = 5 OR B > 100", &row));
        assert!(run("SELECT * FROM T WHERE NOT A = 6", &row));
    }

    #[test]
    fn in_list_and_between() {
        let row = vec![Value::Int(6), Value::Float(0.0), Value::Double(0.0)];
        assert!(run("SELECT * FROM T WHERE A IN (0, 6, 26, 27)", &row));
        assert!(!run("SELECT * FROM T WHERE A IN (1, 2)", &row));
        assert!(run("SELECT * FROM T WHERE A NOT IN (1, 2)", &row));
        assert!(run("SELECT * FROM T WHERE A BETWEEN 5 AND 7", &row));
        assert!(run("SELECT * FROM T WHERE A NOT BETWEEN 10 AND 20", &row));
    }

    #[test]
    fn udf_in_predicate() {
        // SPEED(3,4,0) = 5.
        let row = vec![Value::Int(3), Value::Float(4.0), Value::Double(0.0)];
        assert!(run("SELECT * FROM T WHERE SPEED(A, B, C) <= 5.0", &row));
        assert!(!run("SELECT * FROM T WHERE SPEED(A, B, C) < 5.0", &row));
    }

    #[test]
    fn arithmetic_in_predicate() {
        let row = vec![Value::Int(10), Value::Float(2.0), Value::Double(0.0)];
        assert!(run("SELECT * FROM T WHERE A / B = 5.0", &row));
        assert!(run("SELECT * FROM T WHERE (A + 2) * B = 24.0", &row));
    }

    #[test]
    fn working_row_positions() {
        // Working row holds only attrs {1 (B), 2 (C)}, in that order.
        let udfs = UdfRegistry::new();
        let cx = EvalContext::new(3, &[1, 2], &udfs);
        assert_eq!(cx.position(1), 0);
        assert_eq!(cx.position(2), 1);
        let expr = BoundExpr::Cmp {
            op: CmpOp::Gt,
            lhs: BoundScalar::Attr(2),
            rhs: BoundScalar::Const(1.0),
        };
        assert!(cx.eval(&expr, &[Value::Float(0.0), Value::Double(1.5)]));
    }

    #[test]
    fn compare_values_cross_type() {
        assert!(compare_values(CmpOp::Eq, &Value::Int(2), &Value::Double(2.0)));
        assert!(compare_values(CmpOp::Lt, &Value::Short(1), &Value::Float(1.5)));
    }

    /// A 60-row block over schema (A Int, B Float, C Double): 50 dense
    /// rows followed by a lazy tail (constant A, affine B, dense C).
    fn column_block() -> ColumnBlock {
        use dv_types::DataType;
        let mut b =
            ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Float, DataType::Double]);
        for i in 0..50 {
            b.columns[0].append_data().push_value(Value::Int(i));
            b.columns[1].append_data().push_value(Value::Float(i as f32 / 10.0));
            b.columns[2].append_data().push_value(Value::Double((i * 7 % 13) as f64));
        }
        b.advance_rows(50);
        b.columns[0].push_run(10, ColumnGen::Const(Value::Int(5)));
        b.columns[1].push_run(10, ColumnGen::Affine { start: 2, step: 3 });
        for i in 0..10 {
            b.columns[2].append_data().push_value(Value::Double(i as f64));
        }
        b.advance_rows(10);
        b
    }

    #[test]
    fn vectorized_matches_row_path() {
        let sqls = [
            "SELECT * FROM T WHERE A > 20",
            "SELECT * FROM T WHERE 20 < A",
            "SELECT * FROM T WHERE A > 20 AND B < 4.0",
            "SELECT * FROM T WHERE A = 5 OR C > 6",
            "SELECT * FROM T WHERE NOT (A < 30 OR C = 1)",
            "SELECT * FROM T WHERE A IN (1, 5, 55)",
            "SELECT * FROM T WHERE A NOT IN (5, 23)",
            "SELECT * FROM T WHERE B BETWEEN 1.0 AND 3.0",
            "SELECT * FROM T WHERE A NOT BETWEEN 10 AND 40",
            "SELECT * FROM T WHERE A + 2 * B > 10",
            "SELECT * FROM T WHERE A - B = B",
            "SELECT * FROM T WHERE SPEED(A, B, C) < 30.0",
            "SELECT * FROM T WHERE A > 10 AND SPEED(A, B, C) > 20.0",
            "SELECT * FROM T WHERE SPEED(A, B, C) > 20.0 OR A < 5",
            "SELECT * FROM T WHERE NOT SPEED(A, B, C) > 20.0",
        ];
        let udfs = UdfRegistry::with_builtins();
        let s = schema();
        let block = column_block();
        let working: Vec<usize> = (0..s.len()).collect();
        let cx = EvalContext::new(s.len(), &working, &udfs);
        for sql in sqls {
            let b = bind(&parse(sql).unwrap(), &s, &udfs).unwrap();
            let pred = b.predicate.unwrap();
            let bm = cx.eval_block(&pred, &block);
            for i in 0..block.len() {
                let row: Vec<Value> = block.columns.iter().map(|c| c.value_at(i)).collect();
                assert_eq!(bm.get(i), cx.eval(&pred, &row), "{sql} row {i}");
            }
        }
    }

    #[test]
    fn func_detection() {
        let udfs = UdfRegistry::with_builtins();
        let s = schema();
        let with = bind(&parse("SELECT * FROM T WHERE SPEED(A, B, C) < 1").unwrap(), &s, &udfs)
            .unwrap()
            .predicate
            .unwrap();
        let without = bind(&parse("SELECT * FROM T WHERE A + B < 1").unwrap(), &s, &udfs)
            .unwrap()
            .predicate
            .unwrap();
        assert!(expr_has_func(&with));
        assert!(!expr_has_func(&without));
    }
}
