//! Row-at-a-time predicate evaluation — the core of the filtering
//! service.
//!
//! Rows handed to the filter are *working rows*: they contain the
//! attributes in [`crate::bind::BoundQuery::needed_attrs`] order, not
//! full schema order. An [`EvalContext`] carries the schema-index →
//! row-position mapping plus the UDF registry, both fixed per query, so
//! the per-row path is allocation-free except for UDF argument buffers
//! (reused via a small stack array for the common arities).

use dv_types::Value;

use crate::ast::CmpOp;
use crate::bind::{BoundExpr, BoundScalar};
use crate::udf::UdfRegistry;

/// Per-query evaluation context.
pub struct EvalContext<'a> {
    /// `positions[schema_attr_index]` = position of that attribute in
    /// the working row, or `usize::MAX` when absent. Built by
    /// [`EvalContext::new`].
    positions: Vec<usize>,
    udfs: &'a UdfRegistry,
}

impl<'a> EvalContext<'a> {
    /// Build a context for working rows holding `working_attrs` (schema
    /// attribute indices in row order) out of a schema with
    /// `schema_len` attributes.
    pub fn new(schema_len: usize, working_attrs: &[usize], udfs: &'a UdfRegistry) -> Self {
        let mut positions = vec![usize::MAX; schema_len];
        for (pos, &attr) in working_attrs.iter().enumerate() {
            positions[attr] = pos;
        }
        EvalContext { positions, udfs }
    }

    /// Position of schema attribute `attr` within working rows.
    /// Panics if the attribute is not part of the working set — that is
    /// a planning bug, not a data condition.
    #[inline]
    pub fn position(&self, attr: usize) -> usize {
        let p = self.positions[attr];
        debug_assert!(p != usize::MAX, "attribute {attr} missing from working row");
        p
    }

    /// Evaluate a boolean expression on a working row.
    pub fn eval(&self, expr: &BoundExpr, row: &[Value]) -> bool {
        match expr {
            BoundExpr::And(l, r) => self.eval(l, row) && self.eval(r, row),
            BoundExpr::Or(l, r) => self.eval(l, row) || self.eval(r, row),
            BoundExpr::Not(i) => !self.eval(i, row),
            BoundExpr::Cmp { op, lhs, rhs } => {
                op.apply(self.scalar(lhs, row), self.scalar(rhs, row))
            }
            BoundExpr::InList { expr, list, negated } => {
                let v = self.scalar(expr, row);
                let found = list.iter().any(|item| self.scalar(item, row) == v);
                found != *negated
            }
            BoundExpr::Between { expr, lo, hi, negated } => {
                let v = self.scalar(expr, row);
                let inside = v >= self.scalar(lo, row) && v <= self.scalar(hi, row);
                inside != *negated
            }
        }
    }

    /// Evaluate a scalar expression on a working row.
    pub fn scalar(&self, s: &BoundScalar, row: &[Value]) -> f64 {
        match s {
            BoundScalar::Attr(a) => row[self.position(*a)].as_f64(),
            BoundScalar::Const(c) => *c,
            BoundScalar::Func { slot, args } => {
                // Common UDF arities are tiny; avoid heap traffic with a
                // stack buffer when possible.
                if args.len() <= 8 {
                    let mut buf = [0.0f64; 8];
                    for (i, a) in args.iter().enumerate() {
                        buf[i] = self.scalar(a, row);
                    }
                    self.udfs.call(*slot, &buf[..args.len()])
                } else {
                    let vals: Vec<f64> = args.iter().map(|a| self.scalar(a, row)).collect();
                    self.udfs.call(*slot, &vals)
                }
            }
            BoundScalar::Arith { op, lhs, rhs } => {
                op.apply(self.scalar(lhs, row), self.scalar(rhs, row))
            }
        }
    }
}

/// Evaluate `op` between two values using numeric comparison — shared
/// helper for engines (minidb) that filter full-schema rows directly.
#[inline]
pub fn compare_values(op: CmpOp, l: &Value, r: &Value) -> bool {
    op.apply(l.as_f64(), r.as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse;
    use crate::udf::UdfRegistry;
    use dv_types::{Attribute, DataType, Schema};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![
                Attribute::new("A", DataType::Int),
                Attribute::new("B", DataType::Float),
                Attribute::new("C", DataType::Double),
            ],
        )
        .unwrap()
    }

    /// Bind `sql` and evaluate its predicate against a full-schema row.
    fn run(sql: &str, row: &[Value]) -> bool {
        let q = parse(sql).unwrap();
        let udfs = UdfRegistry::with_builtins();
        let b = bind(&q, &schema(), &udfs).unwrap();
        let working: Vec<usize> = (0..schema().len()).collect();
        let cx = EvalContext::new(schema().len(), &working, &udfs);
        cx.eval(b.predicate.as_ref().unwrap(), row)
    }

    #[test]
    fn comparisons() {
        let row = vec![Value::Int(5), Value::Float(0.5), Value::Double(2.0)];
        assert!(run("SELECT * FROM T WHERE A > 4", &row));
        assert!(!run("SELECT * FROM T WHERE A > 5", &row));
        assert!(run("SELECT * FROM T WHERE A >= 5 AND B < 1.0", &row));
        assert!(run("SELECT * FROM T WHERE A = 5 OR B > 100", &row));
        assert!(run("SELECT * FROM T WHERE NOT A = 6", &row));
    }

    #[test]
    fn in_list_and_between() {
        let row = vec![Value::Int(6), Value::Float(0.0), Value::Double(0.0)];
        assert!(run("SELECT * FROM T WHERE A IN (0, 6, 26, 27)", &row));
        assert!(!run("SELECT * FROM T WHERE A IN (1, 2)", &row));
        assert!(run("SELECT * FROM T WHERE A NOT IN (1, 2)", &row));
        assert!(run("SELECT * FROM T WHERE A BETWEEN 5 AND 7", &row));
        assert!(run("SELECT * FROM T WHERE A NOT BETWEEN 10 AND 20", &row));
    }

    #[test]
    fn udf_in_predicate() {
        // SPEED(3,4,0) = 5.
        let row = vec![Value::Int(3), Value::Float(4.0), Value::Double(0.0)];
        assert!(run("SELECT * FROM T WHERE SPEED(A, B, C) <= 5.0", &row));
        assert!(!run("SELECT * FROM T WHERE SPEED(A, B, C) < 5.0", &row));
    }

    #[test]
    fn arithmetic_in_predicate() {
        let row = vec![Value::Int(10), Value::Float(2.0), Value::Double(0.0)];
        assert!(run("SELECT * FROM T WHERE A / B = 5.0", &row));
        assert!(run("SELECT * FROM T WHERE (A + 2) * B = 24.0", &row));
    }

    #[test]
    fn working_row_positions() {
        // Working row holds only attrs {1 (B), 2 (C)}, in that order.
        let udfs = UdfRegistry::new();
        let cx = EvalContext::new(3, &[1, 2], &udfs);
        assert_eq!(cx.position(1), 0);
        assert_eq!(cx.position(2), 1);
        let expr = BoundExpr::Cmp {
            op: CmpOp::Gt,
            lhs: BoundScalar::Attr(2),
            rhs: BoundScalar::Const(1.0),
        };
        assert!(cx.eval(&expr, &[Value::Float(0.0), Value::Double(1.5)]));
    }

    #[test]
    fn compare_values_cross_type() {
        assert!(compare_values(CmpOp::Eq, &Value::Int(2), &Value::Double(2.0)));
        assert!(compare_values(CmpOp::Lt, &Value::Short(1), &Value::Float(1.5)));
    }
}
