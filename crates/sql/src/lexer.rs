//! Hand-written lexer for the SQL subset.

use dv_types::{DvError, Result};

use crate::token::{Token, TokenKind};

/// Tokenize a query string. Keywords are matched case-insensitively;
/// identifiers keep their spelling (the binder upper-cases them).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer { src: input.as_bytes(), pos: 0, line: 1, column: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else {
                out.push(Token { kind: TokenKind::Eof, line, column });
                return Ok(out);
            };
            let kind = match c {
                b'*' => self.simple(TokenKind::Star),
                b',' => self.simple(TokenKind::Comma),
                b'(' => self.simple(TokenKind::LParen),
                b')' => self.simple(TokenKind::RParen),
                b'+' => self.simple(TokenKind::Plus),
                b'-' => self.simple(TokenKind::Minus),
                b'/' => self.simple(TokenKind::Slash),
                b';' => self.simple(TokenKind::Semi),
                b'=' => self.simple(TokenKind::Eq),
                b'<' => {
                    self.advance();
                    match self.peek() {
                        Some(b'=') => {
                            self.advance();
                            TokenKind::Le
                        }
                        Some(b'>') => {
                            self.advance();
                            TokenKind::Ne
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.advance();
                    if self.peek() == Some(b'=') {
                        self.advance();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                b'!' => {
                    self.advance();
                    if self.peek() == Some(b'=') {
                        self.advance();
                        TokenKind::Ne
                    } else {
                        return Err(self.err("expected `=` after `!`"));
                    }
                }
                b'0'..=b'9' | b'.' => self.number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                other => return Err(self.err(&format!("unexpected character `{}`", other as char))),
            };
            out.push(Token { kind, line, column });
        }
    }

    fn err(&self, message: &str) -> DvError {
        DvError::SqlParse { message: message.into(), line: self.line, column: self.column }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn advance(&mut self) {
        if let Some(&c) = self.src.get(self.pos) {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
    }

    fn simple(&mut self, kind: TokenKind) -> TokenKind {
        self.advance();
        kind
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.advance(),
                // `--` line comments, handy in query files used by the
                // bench harness.
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.advance();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.advance(),
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.advance();
                }
                b'e' | b'E' if !saw_exp && self.pos > start => {
                    saw_exp = true;
                    self.advance();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.advance();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if text == "." {
            return Err(self.err("lone `.` is not a number"));
        }
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(TokenKind::FloatLit)
                .map_err(|_| self.err(&format!("invalid numeric literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|_| self.err(&format!("integer literal `{text}` out of range")))
        }
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.advance();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match text.to_ascii_uppercase().as_str() {
            "SELECT" => TokenKind::Select,
            "FROM" => TokenKind::From,
            "WHERE" => TokenKind::Where,
            "AND" => TokenKind::And,
            "OR" => TokenKind::Or,
            "NOT" => TokenKind::Not,
            "IN" => TokenKind::In,
            "BETWEEN" => TokenKind::Between,
            "GROUP" => TokenKind::Group,
            "BY" => TokenKind::By,
            _ => TokenKind::Ident(text.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as K;

    fn kinds(q: &str) -> Vec<K> {
        tokenize(q).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_paper_example() {
        // From Figure 1 of the paper.
        let ks = kinds("SELECT * FROM IparsData WHERE RID in (0,6) AND TIME >= 1000;");
        assert_eq!(
            ks,
            vec![
                K::Select,
                K::Star,
                K::From,
                K::Ident("IparsData".into()),
                K::Where,
                K::Ident("RID".into()),
                K::In,
                K::LParen,
                K::IntLit(0),
                K::Comma,
                K::IntLit(6),
                K::RParen,
                K::And,
                K::Ident("TIME".into()),
                K::Ge,
                K::IntLit(1000),
                K::Semi,
                K::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("< <= > >= = != <>"),
            vec![K::Lt, K::Le, K::Gt, K::Ge, K::Eq, K::Ne, K::Ne, K::Eof]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 0.7 30.0 1e3 2.5E-2"),
            vec![
                K::IntLit(42),
                K::FloatLit(0.7),
                K::FloatLit(30.0),
                K::FloatLit(1000.0),
                K::FloatLit(0.025),
                K::Eof
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select from where and or not in between group by")[..10],
            [
                K::Select,
                K::From,
                K::Where,
                K::And,
                K::Or,
                K::Not,
                K::In,
                K::Between,
                K::Group,
                K::By
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- the projection\n *");
        assert_eq!(ks, vec![K::Select, K::Star, K::Eof]);
    }

    #[test]
    fn position_tracking() {
        let toks = tokenize("SELECT\n  *").unwrap();
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn bad_chars_error_with_location() {
        let e = tokenize("SELECT #").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("1:8"), "{msg}");
    }

    #[test]
    fn bang_requires_eq() {
        assert!(tokenize("a ! b").is_err());
    }
}
