//! Abstract syntax of the SQL subset.
//!
//! The AST keeps identifier spellings as written; name resolution and
//! case normalization happen in [`crate::bind`]. `Display`
//! implementations regenerate parseable SQL (exercised by a round-trip
//! property test).

use std::fmt;

pub use dv_types::AggFunc;

/// A parsed `SELECT ... FROM ... WHERE ... GROUP BY ...` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: SelectList,
    pub dataset: String,
    pub predicate: Option<Expr>,
    /// `GROUP BY` column names, in clause order (empty = no clause).
    pub group_by: Vec<String>,
}

/// The projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `SELECT *`
    All,
    /// `SELECT a, COUNT(*), AVG(b), ...`
    Columns(Vec<SelectItem>),
}

/// One item of an explicit select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column reference (name as written).
    Column(String),
    /// An aggregate call; `arg` is `None` for `COUNT(*)`.
    Agg { func: AggFunc, arg: Option<String> },
}

impl SelectItem {
    /// Convenience constructor for a plain column item.
    pub fn column(name: impl Into<String>) -> SelectItem {
        SelectItem::Column(name.into())
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// The operator accepting exactly the complementary value set
    /// (used when pushing `NOT` through comparisons).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Mirror image for swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// Apply to two numeric operands.
    #[inline]
    pub fn apply(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }
}

/// Arithmetic operators inside scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    /// Apply to two numeric operands.
    #[inline]
    pub fn apply(self, l: f64, r: f64) -> f64 {
        match self {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
            ArithOp::Div => l / r,
        }
    }
}

/// Boolean-valued expression (the `WHERE` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Cmp { op: CmpOp, lhs: Scalar, rhs: Scalar },
    InList { expr: Scalar, list: Vec<Scalar>, negated: bool },
    Between { expr: Scalar, lo: Scalar, hi: Scalar, negated: bool },
}

/// Numeric-valued expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Attribute reference (name as written).
    Column(String),
    IntLit(i64),
    FloatLit(f64),
    /// User-defined filter function call, e.g. `SPEED(OILVX, OILVY, OILVZ)`.
    Func {
        name: String,
        args: Vec<Scalar>,
    },
    Arith {
        op: ArithOp,
        lhs: Box<Scalar>,
        rhs: Box<Scalar>,
    },
    Neg(Box<Scalar>),
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {} FROM {}", self.select, self.dataset)?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectList::All => write!(f, "*"),
            SelectList::Columns(cols) => {
                let items: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                write!(f, "{}", items.join(", "))
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Agg { func, arg } => {
                write!(f, "{func}({})", arg.as_deref().unwrap_or("*"))
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Parenthesize everything: unambiguous and re-parseable.
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Expr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|s| s.to_string()).collect();
                let not = if *negated { "NOT " } else { "" };
                write!(f, "{expr} {not}IN ({})", items.join(", "))
            }
            Expr::Between { expr, lo, hi, negated } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "{expr} {not}BETWEEN {lo} AND {hi}")
            }
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Column(c) => write!(f, "{c}"),
            Scalar::IntLit(v) => write!(f, "{v}"),
            Scalar::FloatLit(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    // Keep the `.0` so re-lexing yields a float again.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Scalar::Func { name, args } => {
                let items: Vec<String> = args.iter().map(|s| s.to_string()).collect();
                write!(f, "{name}({})", items.join(", "))
            }
            Scalar::Arith { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Scalar::Neg(s) => write!(f, "(-{s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_is_involution() {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn cmp_apply_semantics() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(!CmpOp::Lt.apply(2.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
    }

    #[test]
    fn flip_matches_operand_swap() {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            for (l, r) in [(1.0, 2.0), (2.0, 1.0), (2.0, 2.0)] {
                assert_eq!(op.apply(l, r), op.flip().apply(r, l));
            }
        }
    }

    #[test]
    fn display_query() {
        let q = Query {
            select: SelectList::Columns(vec![
                SelectItem::column("SOIL"),
                SelectItem::column("SGAS"),
            ]),
            dataset: "IPARS".into(),
            predicate: Some(Expr::Cmp {
                op: CmpOp::Gt,
                lhs: Scalar::Column("TIME".into()),
                rhs: Scalar::IntLit(1000),
            }),
            group_by: Vec::new(),
        };
        assert_eq!(q.to_string(), "SELECT SOIL, SGAS FROM IPARS WHERE TIME > 1000");
    }

    #[test]
    fn display_aggregate_query() {
        let q = Query {
            select: SelectList::Columns(vec![
                SelectItem::column("REL"),
                SelectItem::Agg { func: AggFunc::Count, arg: None },
                SelectItem::Agg { func: AggFunc::Avg, arg: Some("SOIL".into()) },
            ]),
            dataset: "IPARS".into(),
            predicate: None,
            group_by: vec!["REL".into()],
        };
        assert_eq!(q.to_string(), "SELECT REL, COUNT(*), AVG(SOIL) FROM IPARS GROUP BY REL");
    }

    #[test]
    fn display_float_keeps_decimal_point() {
        let s = Scalar::FloatLit(30.0);
        assert_eq!(s.to_string(), "30.0");
    }
}
