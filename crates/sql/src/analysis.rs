//! Sound per-attribute range extraction from `WHERE` clauses.
//!
//! The indexing service prunes files and chunks using *implicit
//! attributes* (paper §4): a chunk whose implicit `TIME` range is
//! `[900, 999]` cannot contribute to `WHERE TIME >= 1000`. To decide
//! that, we need, for each attribute, a set of values that is a
//! **superset** of those any satisfying row could have — pruning must
//! never drop a row, so the analysis errs toward `all` whenever an
//! expression is too complex (UDFs, attribute-vs-attribute
//! comparisons, arithmetic over attributes).
//!
//! Soundness under negation is handled by *pushing* `NOT` down rather
//! than complementing an (already widened) child result: complementing
//! a superset would yield a subset, which is exactly the wrong
//! direction.
//!
//! The guarantee is over **finite** attribute values. A `NaN` value
//! satisfies every negated comparison under IEEE semantics
//! (`!(NaN < 5)`), but no [`Interval`] contains it. That is fine here:
//! pruning consumes this map only through implicit-attribute extents
//! (integer-valued by construction: loop and binding variables) and
//! chunk-index bounding boxes (finite min/max of stored data), so a
//! `NaN` can never be the value that pruning decides on.

use std::collections::HashMap;

use dv_types::{Interval, IntervalSet};

use crate::ast::CmpOp;
use crate::bind::{BoundExpr, BoundScalar};

/// The per-attribute constraint map extracted from a predicate.
/// Attributes absent from the map are unconstrained.
pub type RangeMap = HashMap<usize, IntervalSet>;

/// Extract sound per-attribute ranges from a bound predicate.
///
/// Guarantee: for every row `r` with `eval(pred, r) == true` and every
/// attribute `a` in the result map, `result[a].contains(r[a])`.
pub fn attribute_ranges(pred: &BoundExpr) -> RangeMap {
    ranges(pred, false)
}

/// Intersect two maps attribute-wise; attributes missing from a map are
/// unconstrained (`all`), so intersection keeps the other side.
fn and_maps(mut a: RangeMap, b: RangeMap) -> RangeMap {
    for (attr, set) in b {
        a.entry(attr).and_modify(|cur| *cur = cur.intersect(&set)).or_insert(set);
    }
    a
}

/// Union two maps attribute-wise; an attribute constrained on only one
/// side becomes unconstrained (a row may satisfy the other side).
fn or_maps(a: RangeMap, b: RangeMap) -> RangeMap {
    let mut out = RangeMap::new();
    for (attr, sa) in &a {
        if let Some(sb) = b.get(attr) {
            let u = sa.union(sb);
            if !u.is_all() {
                out.insert(*attr, u);
            }
        }
    }
    out
}

fn ranges(e: &BoundExpr, negate: bool) -> RangeMap {
    match e {
        BoundExpr::And(l, r) => {
            if negate {
                // NOT (l AND r) = NOT l OR NOT r
                or_maps(ranges(l, true), ranges(r, true))
            } else {
                and_maps(ranges(l, false), ranges(r, false))
            }
        }
        BoundExpr::Or(l, r) => {
            if negate {
                and_maps(ranges(l, true), ranges(r, true))
            } else {
                or_maps(ranges(l, false), ranges(r, false))
            }
        }
        BoundExpr::Not(inner) => ranges(inner, !negate),
        BoundExpr::Cmp { op, lhs, rhs } => {
            let effective = if negate { op.negate() } else { *op };
            cmp_ranges(effective, lhs, rhs)
        }
        BoundExpr::InList { expr, list, negated } => {
            let effective_negated = *negated != negate;
            let BoundScalar::Attr(attr) = expr else { return RangeMap::new() };
            let mut points = Vec::with_capacity(list.len());
            for item in list {
                match item {
                    BoundScalar::Const(v) => points.push(*v),
                    // Non-constant member: cannot constrain soundly.
                    _ => return RangeMap::new(),
                }
            }
            let set = IntervalSet::points(&points);
            let set = if effective_negated { set.complement() } else { set };
            one(*attr, set)
        }
        BoundExpr::Between { expr, lo, hi, negated } => {
            let effective_negated = *negated != negate;
            let (BoundScalar::Attr(attr), BoundScalar::Const(l), BoundScalar::Const(h)) =
                (expr, lo, hi)
            else {
                return RangeMap::new();
            };
            let set = IntervalSet::single(Interval::closed(*l, *h));
            let set = if effective_negated { set.complement() } else { set };
            one(*attr, set)
        }
    }
}

fn one(attr: usize, set: IntervalSet) -> RangeMap {
    let mut m = RangeMap::new();
    m.insert(attr, set);
    m
}

fn cmp_ranges(op: CmpOp, lhs: &BoundScalar, rhs: &BoundScalar) -> RangeMap {
    // Normalize to `attr OP const`; anything else is unconstrainable.
    let (attr, op, val) = match (lhs, rhs) {
        (BoundScalar::Attr(a), BoundScalar::Const(v)) => (*a, op, *v),
        (BoundScalar::Const(v), BoundScalar::Attr(a)) => (*a, op.flip(), *v),
        _ => return RangeMap::new(),
    };
    let set = match op {
        CmpOp::Lt => IntervalSet::single(Interval::less(val)),
        CmpOp::Le => IntervalSet::single(Interval::at_most(val)),
        CmpOp::Gt => IntervalSet::single(Interval::greater(val)),
        CmpOp::Ge => IntervalSet::single(Interval::at_least(val)),
        CmpOp::Eq => IntervalSet::single(Interval::point(val)),
        CmpOp::Ne => IntervalSet::single(Interval::point(val)).complement(),
    };
    one(attr, set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse;
    use crate::udf::UdfRegistry;
    use dv_types::{Attribute, DataType, Schema};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![
                Attribute::new("REL", DataType::Short),  // 0
                Attribute::new("TIME", DataType::Int),   // 1
                Attribute::new("SOIL", DataType::Float), // 2
                Attribute::new("X", DataType::Float),    // 3
            ],
        )
        .unwrap()
    }

    fn ranges_of(sql: &str) -> RangeMap {
        let q = parse(sql).unwrap();
        let b = bind(&q, &schema(), &UdfRegistry::with_builtins()).unwrap();
        attribute_ranges(b.predicate.as_ref().unwrap())
    }

    #[test]
    fn conjunction_intersects() {
        let m = ranges_of("SELECT * FROM T WHERE TIME >= 1000 AND TIME <= 1100");
        let t = &m[&1];
        assert!(t.contains(1000.0));
        assert!(t.contains(1100.0));
        assert!(!t.contains(999.0));
        assert!(!t.contains(1101.0));
    }

    #[test]
    fn strict_bounds_are_open() {
        let m = ranges_of("SELECT * FROM T WHERE TIME > 1000 AND TIME < 1100");
        let t = &m[&1];
        assert!(!t.contains(1000.0));
        assert!(t.contains(1000.5));
        assert!(!t.contains(1100.0));
    }

    #[test]
    fn in_list_to_points() {
        let m = ranges_of("SELECT * FROM T WHERE REL IN (0, 6, 26, 27)");
        let r = &m[&0];
        assert!(r.contains(26.0));
        assert!(!r.contains(3.0));
    }

    #[test]
    fn flipped_literal_side() {
        let m = ranges_of("SELECT * FROM T WHERE 1000 <= TIME");
        assert!(m[&1].contains(1000.0));
        assert!(!m[&1].contains(999.0));
    }

    #[test]
    fn or_unions_same_attr() {
        let m = ranges_of("SELECT * FROM T WHERE TIME < 10 OR TIME > 90");
        let t = &m[&1];
        assert!(t.contains(5.0));
        assert!(!t.contains(50.0));
        assert!(t.contains(95.0));
    }

    #[test]
    fn or_drops_one_sided_attrs() {
        // A row with any TIME can satisfy the SOIL side, so TIME must be
        // unconstrained.
        let m = ranges_of("SELECT * FROM T WHERE TIME < 10 OR SOIL > 0.7");
        assert!(!m.contains_key(&1));
        assert!(!m.contains_key(&2));
    }

    #[test]
    fn not_pushes_through() {
        let m = ranges_of("SELECT * FROM T WHERE NOT (TIME < 1000)");
        assert!(m[&1].contains(1000.0));
        assert!(!m[&1].contains(999.0));
    }

    #[test]
    fn not_over_and_is_sound() {
        // NOT (TIME >= 10 AND TIME <= 20) = TIME < 10 OR TIME > 20.
        let m = ranges_of("SELECT * FROM T WHERE NOT (TIME >= 10 AND TIME <= 20)");
        let t = &m[&1];
        assert!(t.contains(5.0));
        assert!(!t.contains(15.0));
        assert!(t.contains(25.0));
    }

    #[test]
    fn double_negation() {
        let m = ranges_of("SELECT * FROM T WHERE NOT (NOT (TIME = 7))");
        assert!(m[&1].contains(7.0));
        assert!(!m[&1].contains(8.0));
    }

    #[test]
    fn udf_unconstrained() {
        let m = ranges_of("SELECT * FROM T WHERE SPEED(X, X, X) < 30.0");
        assert!(m.is_empty());
    }

    #[test]
    fn udf_and_range_keeps_range() {
        let m = ranges_of("SELECT * FROM T WHERE TIME > 5 AND SPEED(X, X, X) < 30.0");
        assert!(m.contains_key(&1));
        assert!(!m.contains_key(&3));
    }

    #[test]
    fn between_and_not_between() {
        let m = ranges_of("SELECT * FROM T WHERE TIME BETWEEN 10 AND 20");
        assert!(m[&1].contains(10.0) && m[&1].contains(20.0) && !m[&1].contains(21.0));
        let m = ranges_of("SELECT * FROM T WHERE TIME NOT BETWEEN 10 AND 20");
        assert!(!m[&1].contains(15.0) && m[&1].contains(21.0));
    }

    #[test]
    fn not_in_is_complement() {
        let m = ranges_of("SELECT * FROM T WHERE REL NOT IN (1, 2)");
        assert!(!m[&0].contains(1.0));
        assert!(m[&0].contains(3.0));
    }

    #[test]
    fn attr_vs_attr_unconstrained() {
        let m = ranges_of("SELECT * FROM T WHERE SOIL > X");
        assert!(m.is_empty());
    }

    #[test]
    fn contradiction_yields_empty_set() {
        let m = ranges_of("SELECT * FROM T WHERE TIME > 10 AND TIME < 5");
        assert!(m[&1].is_empty());
    }

    #[test]
    fn or_with_contradictory_side_keeps_other_arm() {
        // The left arm is unsatisfiable (empty set), so the union must
        // equal the right arm exactly — an empty set is a valid operand
        // of or_maps, not a special case.
        let m = ranges_of("SELECT * FROM T WHERE (TIME > 10 AND TIME < 5) OR TIME = 7");
        let t = &m[&1];
        assert!(t.contains(7.0));
        assert!(!t.contains(8.0));
    }

    #[test]
    fn not_over_or_intersects() {
        // NOT (TIME < 10 OR TIME > 20) = TIME >= 10 AND TIME <= 20 —
        // the De Morgan swap must use and_maps on the negated arms.
        let m = ranges_of("SELECT * FROM T WHERE NOT (TIME < 10 OR TIME > 20)");
        let t = &m[&1];
        assert!(t.contains(10.0) && t.contains(20.0));
        assert!(!t.contains(9.0) && !t.contains(21.0));
    }

    #[test]
    fn not_over_udf_unconstrained() {
        // Pushing NOT into an opaque comparison must still widen to
        // `all`, never complement a widened result.
        let m = ranges_of("SELECT * FROM T WHERE NOT (SPEED(X, X, X) < 30.0)");
        assert!(m.is_empty());
    }
}
