//! Name resolution: AST → bound query.
//!
//! Binding resolves column names to schema attribute indices, function
//! names to [`UdfRegistry`] slots, folds constant arithmetic, and
//! computes the projection. A [`BoundQuery`] is the hand-off format
//! between the SQL front-end and the layout compiler / runtime: all
//! string lookups are done exactly once, before any file is touched.

use dv_types::{AggFunc, Attribute, DataType, DvError, Result, Schema, MAX_GROUP_COLS};

use crate::ast::{ArithOp, CmpOp, Expr, Query, Scalar, SelectItem, SelectList};
use crate::udf::UdfRegistry;

/// A bound scalar expression: all names resolved to indices, constants
/// folded.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundScalar {
    /// Schema attribute by index.
    Attr(usize),
    /// Constant (integer literals widen losslessly for our domains).
    Const(f64),
    /// UDF call by registry slot.
    Func {
        slot: usize,
        args: Vec<BoundScalar>,
    },
    Arith {
        op: ArithOp,
        lhs: Box<BoundScalar>,
        rhs: Box<BoundScalar>,
    },
}

/// A bound boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    Cmp { op: CmpOp, lhs: BoundScalar, rhs: BoundScalar },
    InList { expr: BoundScalar, list: Vec<BoundScalar>, negated: bool },
    Between { expr: BoundScalar, lo: BoundScalar, hi: BoundScalar, negated: bool },
}

/// One bound aggregate call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundAgg {
    pub func: AggFunc,
    /// Schema attribute index of the argument; `None` = `COUNT(*)`.
    pub arg: Option<usize>,
}

/// One output column of an aggregate query, in select-list order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOutput {
    /// Index into [`BoundAggSpec::group_by`].
    Group(usize),
    /// Index into [`BoundAggSpec::aggs`].
    Agg(usize),
}

/// The aggregation half of a bound query: `GROUP BY` keys, aggregate
/// calls, and the select-list output order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundAggSpec {
    /// Schema attribute indices of the `GROUP BY` columns, in clause
    /// order (at most [`MAX_GROUP_COLS`]). Empty = global aggregate.
    pub group_by: Vec<usize>,
    /// Aggregate calls in select-list appearance order.
    pub aggs: Vec<BoundAgg>,
    /// Output columns in select-list order.
    pub output: Vec<AggOutput>,
}

impl BoundAggSpec {
    /// The aggregate functions, in [`BoundAggSpec::aggs`] order.
    pub fn funcs(&self) -> Vec<AggFunc> {
        self.aggs.iter().map(|a| a.func).collect()
    }

    /// Data types of the `GROUP BY` key columns.
    pub fn group_dtypes(&self, schema: &Schema) -> Vec<DataType> {
        self.group_by.iter().map(|&i| schema.attr_at(i).dtype).collect()
    }

    /// Result data type of aggregate `a`.
    pub fn result_dtype(&self, a: usize, schema: &Schema) -> DataType {
        let agg = &self.aggs[a];
        agg.func.result_dtype(agg.arg.map(|i| schema.attr_at(i).dtype))
    }

    /// Schema of the finalized aggregate result, in select-list order.
    pub fn output_schema(&self, schema: &Schema) -> Schema {
        let attrs: Vec<Attribute> = self
            .output
            .iter()
            .map(|o| match *o {
                AggOutput::Group(k) => schema.attr_at(self.group_by[k]).clone(),
                AggOutput::Agg(a) => {
                    let agg = &self.aggs[a];
                    let name = match agg.arg {
                        Some(i) => format!("{}({})", agg.func, schema.attr_at(i).name),
                        None => format!("{}(*)", agg.func),
                    };
                    Attribute::new(name, self.result_dtype(a, schema))
                }
            })
            .collect();
        Schema::new(schema.name.clone(), attrs).expect("binder rejects duplicate output columns")
    }
}

/// A fully-resolved query ready for planning and execution.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// Dataset name as written in `FROM` (matched case-insensitively
    /// against the descriptor's dataset name by the planner).
    pub dataset: String,
    /// Schema the query was bound against.
    pub schema: Schema,
    /// Indices of the selected attributes, in output order. For
    /// aggregate queries this is the sorted, deduplicated union of the
    /// `GROUP BY` columns and aggregate arguments — exactly what the
    /// nodes must materialize (and what the ablation mode ships).
    pub projection: Vec<usize>,
    /// Bound WHERE clause, if any.
    pub predicate: Option<BoundExpr>,
    /// Aggregation spec when the query aggregates (`GROUP BY` and/or
    /// aggregate select items).
    pub agg: Option<BoundAggSpec>,
}

impl BoundQuery {
    /// Schema of the result rows.
    pub fn output_schema(&self) -> Schema {
        match &self.agg {
            Some(spec) => spec.output_schema(&self.schema),
            None => self.schema.project(&self.projection),
        }
    }

    /// Indices of every attribute the execution needs: the projection
    /// plus all attributes the predicate reads. Sorted, deduplicated.
    /// This is the *working set* the extraction service materializes —
    /// files holding none of these attributes are never opened.
    pub fn needed_attrs(&self) -> Vec<usize> {
        let mut out = self.projection.clone();
        if let Some(p) = &self.predicate {
            collect_expr_attrs(p, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn collect_expr_attrs(e: &BoundExpr, out: &mut Vec<usize>) {
    match e {
        BoundExpr::And(l, r) | BoundExpr::Or(l, r) => {
            collect_expr_attrs(l, out);
            collect_expr_attrs(r, out);
        }
        BoundExpr::Not(i) => collect_expr_attrs(i, out),
        BoundExpr::Cmp { lhs, rhs, .. } => {
            collect_scalar_attrs(lhs, out);
            collect_scalar_attrs(rhs, out);
        }
        BoundExpr::InList { expr, list, .. } => {
            collect_scalar_attrs(expr, out);
            for s in list {
                collect_scalar_attrs(s, out);
            }
        }
        BoundExpr::Between { expr, lo, hi, .. } => {
            collect_scalar_attrs(expr, out);
            collect_scalar_attrs(lo, out);
            collect_scalar_attrs(hi, out);
        }
    }
}

fn collect_scalar_attrs(s: &BoundScalar, out: &mut Vec<usize>) {
    match s {
        BoundScalar::Attr(i) => out.push(*i),
        BoundScalar::Const(_) => {}
        BoundScalar::Func { args, .. } => {
            for a in args {
                collect_scalar_attrs(a, out);
            }
        }
        BoundScalar::Arith { lhs, rhs, .. } => {
            collect_scalar_attrs(lhs, out);
            collect_scalar_attrs(rhs, out);
        }
    }
}

/// Bind a parsed query against a schema and UDF registry.
pub fn bind(query: &Query, schema: &Schema, udfs: &UdfRegistry) -> Result<BoundQuery> {
    let is_agg = !query.group_by.is_empty()
        || matches!(&query.select, SelectList::Columns(cols)
            if cols.iter().any(|c| matches!(c, SelectItem::Agg { .. })));

    let (projection, agg) = if is_agg {
        let spec = bind_agg(query, schema)?;
        let mut proj: Vec<usize> = spec.group_by.clone();
        proj.extend(spec.aggs.iter().filter_map(|a| a.arg));
        proj.sort_unstable();
        proj.dedup();
        (proj, Some(spec))
    } else {
        let proj = match &query.select {
            SelectList::All => (0..schema.len()).collect(),
            SelectList::Columns(cols) => {
                let names: Vec<String> = cols
                    .iter()
                    .map(|c| match c {
                        SelectItem::Column(n) => n.clone(),
                        SelectItem::Agg { .. } => unreachable!("agg handled above"),
                    })
                    .collect();
                schema.resolve(&names)?
            }
        };
        (proj, None)
    };
    let predicate = query.predicate.as_ref().map(|p| bind_expr(p, schema, udfs)).transpose()?;
    Ok(BoundQuery {
        dataset: query.dataset.clone(),
        schema: schema.clone(),
        projection,
        predicate,
        agg,
    })
}

/// Resolve the aggregation half of a query: `GROUP BY` columns,
/// aggregate calls, and the select-list output order.
fn bind_agg(query: &Query, schema: &Schema) -> Result<BoundAggSpec> {
    let cols = match &query.select {
        SelectList::All => {
            return Err(DvError::Binding(
                "SELECT * cannot be combined with GROUP BY; list the grouped columns and \
                 aggregates explicitly"
                    .into(),
            ));
        }
        SelectList::Columns(cols) => cols,
    };
    let mut group_by = Vec::with_capacity(query.group_by.len());
    for name in &query.group_by {
        let idx = schema.index_of(name).ok_or_else(|| {
            DvError::Binding(format!(
                "unknown attribute `{name}` in GROUP BY (schema `{}`)",
                schema.name
            ))
        })?;
        if group_by.contains(&idx) {
            return Err(DvError::Binding(format!("duplicate GROUP BY column `{name}`")));
        }
        group_by.push(idx);
    }
    if group_by.len() > MAX_GROUP_COLS {
        return Err(DvError::Binding(format!(
            "GROUP BY supports at most {MAX_GROUP_COLS} columns, got {}",
            group_by.len()
        )));
    }
    let mut aggs: Vec<BoundAgg> = Vec::new();
    let mut output = Vec::with_capacity(cols.len());
    for item in cols {
        match item {
            SelectItem::Column(name) => {
                let idx = schema.index_of(name).ok_or_else(|| {
                    DvError::Binding(format!(
                        "unknown attribute `{name}` in schema `{}`",
                        schema.name
                    ))
                })?;
                let k = group_by.iter().position(|&g| g == idx).ok_or_else(|| {
                    DvError::Binding(format!(
                        "column `{name}` must appear in GROUP BY or inside an aggregate"
                    ))
                })?;
                if output.contains(&AggOutput::Group(k)) {
                    return Err(DvError::Binding(format!(
                        "column `{name}` selected more than once in an aggregate query"
                    )));
                }
                output.push(AggOutput::Group(k));
            }
            SelectItem::Agg { func, arg } => {
                let arg_idx = match arg {
                    Some(name) => Some(schema.index_of(name).ok_or_else(|| {
                        DvError::Binding(format!(
                            "unknown attribute `{name}` in {func} (schema `{}`)",
                            schema.name
                        ))
                    })?),
                    None => None,
                };
                let bound = BoundAgg { func: *func, arg: arg_idx };
                if aggs.contains(&bound) {
                    return Err(DvError::Binding(format!(
                        "duplicate aggregate `{item}` in select list"
                    )));
                }
                aggs.push(bound);
                output.push(AggOutput::Agg(aggs.len() - 1));
            }
        }
    }
    Ok(BoundAggSpec { group_by, aggs, output })
}

fn bind_expr(e: &Expr, schema: &Schema, udfs: &UdfRegistry) -> Result<BoundExpr> {
    Ok(match e {
        Expr::And(l, r) => BoundExpr::And(
            Box::new(bind_expr(l, schema, udfs)?),
            Box::new(bind_expr(r, schema, udfs)?),
        ),
        Expr::Or(l, r) => BoundExpr::Or(
            Box::new(bind_expr(l, schema, udfs)?),
            Box::new(bind_expr(r, schema, udfs)?),
        ),
        Expr::Not(i) => BoundExpr::Not(Box::new(bind_expr(i, schema, udfs)?)),
        Expr::Cmp { op, lhs, rhs } => BoundExpr::Cmp {
            op: *op,
            lhs: bind_scalar(lhs, schema, udfs)?,
            rhs: bind_scalar(rhs, schema, udfs)?,
        },
        Expr::InList { expr, list, negated } => BoundExpr::InList {
            expr: bind_scalar(expr, schema, udfs)?,
            list: list.iter().map(|s| bind_scalar(s, schema, udfs)).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between { expr, lo, hi, negated } => BoundExpr::Between {
            expr: bind_scalar(expr, schema, udfs)?,
            lo: bind_scalar(lo, schema, udfs)?,
            hi: bind_scalar(hi, schema, udfs)?,
            negated: *negated,
        },
    })
}

fn bind_scalar(s: &Scalar, schema: &Schema, udfs: &UdfRegistry) -> Result<BoundScalar> {
    Ok(match s {
        Scalar::Column(name) => {
            let idx = schema.index_of(name).ok_or_else(|| {
                DvError::Binding(format!("unknown attribute `{name}` in schema `{}`", schema.name))
            })?;
            BoundScalar::Attr(idx)
        }
        Scalar::IntLit(v) => BoundScalar::Const(*v as f64),
        Scalar::FloatLit(v) => BoundScalar::Const(*v),
        Scalar::Neg(inner) => {
            let b = bind_scalar(inner, schema, udfs)?;
            match b {
                BoundScalar::Const(v) => BoundScalar::Const(-v),
                other => BoundScalar::Arith {
                    op: ArithOp::Sub,
                    lhs: Box::new(BoundScalar::Const(0.0)),
                    rhs: Box::new(other),
                },
            }
        }
        Scalar::Func { name, args } => {
            // A bare call like `Speed()` pulls the function's
            // registered implicit argument attributes.
            let bound_args: Vec<BoundScalar> = if args.is_empty() {
                let implicit = udfs.implicit_args(name)?.to_vec();
                implicit
                    .iter()
                    .map(|attr| bind_scalar(&Scalar::Column(attr.clone()), schema, udfs))
                    .collect::<Result<_>>()?
            } else {
                args.iter().map(|a| bind_scalar(a, schema, udfs)).collect::<Result<_>>()?
            };
            let slot = udfs.resolve(name, bound_args.len())?;
            BoundScalar::Func { slot, args: bound_args }
        }
        Scalar::Arith { op, lhs, rhs } => {
            let l = bind_scalar(lhs, schema, udfs)?;
            let r = bind_scalar(rhs, schema, udfs)?;
            match (&l, &r) {
                // Constant folding: loop-bound arithmetic like 100*4+1
                // disappears at bind time.
                (BoundScalar::Const(a), BoundScalar::Const(b)) => {
                    BoundScalar::Const(op.apply(*a, *b))
                }
                _ => BoundScalar::Arith { op: *op, lhs: Box::new(l), rhs: Box::new(r) },
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use dv_types::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(
            "IPARS",
            vec![
                Attribute::new("REL", DataType::Short),
                Attribute::new("TIME", DataType::Int),
                Attribute::new("SOIL", DataType::Float),
                Attribute::new("OILVX", DataType::Float),
                Attribute::new("OILVY", DataType::Float),
                Attribute::new("OILVZ", DataType::Float),
            ],
        )
        .unwrap()
    }

    fn bindq(sql: &str) -> Result<BoundQuery> {
        let q = parse(sql)?;
        bind(&q, &schema(), &UdfRegistry::with_builtins())
    }

    #[test]
    fn star_projects_all() {
        let b = bindq("SELECT * FROM IPARS").unwrap();
        assert_eq!(b.projection, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(b.output_schema().len(), 6);
    }

    #[test]
    fn named_projection_order_kept() {
        let b = bindq("SELECT soil, rel FROM IPARS").unwrap();
        assert_eq!(b.projection, vec![2, 0]);
        assert_eq!(b.output_schema().attributes()[0].name, "SOIL");
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(bindq("SELECT * FROM IPARS WHERE BOGUS > 1").is_err());
        assert!(bindq("SELECT BOGUS FROM IPARS").is_err());
    }

    #[test]
    fn needed_attrs_union_select_and_where() {
        let b =
            bindq("SELECT SOIL FROM IPARS WHERE TIME > 10 AND SPEED(OILVX, OILVY, OILVZ) < 30.0")
                .unwrap();
        assert_eq!(b.needed_attrs(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn constant_folding() {
        let b = bindq("SELECT * FROM IPARS WHERE TIME > 100 * 4 + 1").unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { rhs: BoundScalar::Const(v), .. } => assert_eq!(v, 401.0),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn negative_literal_folds() {
        let b = bindq("SELECT * FROM IPARS WHERE TIME > -5").unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { rhs: BoundScalar::Const(v), .. } => assert_eq!(v, -5.0),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn udf_resolved_to_slot() {
        let b = bindq("SELECT * FROM IPARS WHERE SPEED(OILVX, OILVY, OILVZ) <= 30.0").unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { lhs: BoundScalar::Func { args, .. }, .. } => {
                assert_eq!(args.len(), 3);
                assert_eq!(args[0], BoundScalar::Attr(3));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn bare_udf_uses_implicit_args() {
        let mut udfs = UdfRegistry::with_builtins();
        udfs.register_with_implicit_args(
            "SPEED",
            Some(3),
            vec!["OILVX".into(), "OILVY".into(), "OILVZ".into()],
            |a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt(),
        );
        let q = parse("SELECT * FROM IPARS WHERE Speed() < 30").unwrap();
        let b = bind(&q, &schema(), &udfs).unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { lhs: BoundScalar::Func { args, .. }, .. } => {
                assert_eq!(
                    args,
                    vec![BoundScalar::Attr(3), BoundScalar::Attr(4), BoundScalar::Attr(5)]
                );
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn bare_udf_without_implicit_args_fails_arity() {
        // Builtin SPEED has arity 3 but no implicit args registered.
        assert!(bindq("SELECT * FROM IPARS WHERE SPEED() < 30").is_err());
    }

    #[test]
    fn group_by_aggregate_binds() {
        let b = bindq("SELECT REL, COUNT(*), AVG(SOIL) FROM IPARS GROUP BY REL").unwrap();
        let spec = b.agg.as_ref().unwrap();
        assert_eq!(spec.group_by, vec![0]);
        assert_eq!(
            spec.aggs,
            vec![
                BoundAgg { func: AggFunc::Count, arg: None },
                BoundAgg { func: AggFunc::Avg, arg: Some(2) },
            ]
        );
        assert_eq!(spec.output, vec![AggOutput::Group(0), AggOutput::Agg(0), AggOutput::Agg(1)]);
        // Projection = sorted dedup(group ∪ args): REL(0) and SOIL(2).
        assert_eq!(b.projection, vec![0, 2]);
        let out = b.output_schema();
        assert_eq!(out.attributes()[0].name, "REL");
        assert_eq!(out.attributes()[1].name, "COUNT(*)");
        assert_eq!(out.attributes()[1].dtype, DataType::Long);
        assert_eq!(out.attributes()[2].name, "AVG(SOIL)");
        assert_eq!(out.attributes()[2].dtype, DataType::Double);
    }

    #[test]
    fn min_max_keep_argument_dtype() {
        let b = bindq("SELECT MIN(TIME), MAX(SOIL) FROM IPARS").unwrap();
        let out = b.output_schema();
        assert_eq!(out.attributes()[0].dtype, DataType::Int);
        assert_eq!(out.attributes()[1].dtype, DataType::Float);
        // Global aggregate: no group columns, projection = args only.
        assert_eq!(b.agg.as_ref().unwrap().group_by, Vec::<usize>::new());
        assert_eq!(b.projection, vec![1, 2]);
    }

    #[test]
    fn group_by_without_aggregates_is_distinct() {
        let b = bindq("SELECT REL, TIME FROM IPARS GROUP BY REL, TIME").unwrap();
        let spec = b.agg.as_ref().unwrap();
        assert!(spec.aggs.is_empty());
        assert_eq!(spec.output, vec![AggOutput::Group(0), AggOutput::Group(1)]);
    }

    #[test]
    fn needed_attrs_cover_agg_args_and_predicate() {
        let b = bindq("SELECT REL, SUM(SOIL) FROM IPARS WHERE TIME > 10 GROUP BY REL").unwrap();
        assert_eq!(b.projection, vec![0, 2]);
        assert_eq!(b.needed_attrs(), vec![0, 1, 2]);
    }

    #[test]
    fn agg_validation_errors() {
        // SELECT * with GROUP BY.
        assert!(bindq("SELECT * FROM IPARS GROUP BY REL").is_err());
        // Bare column not in GROUP BY.
        assert!(bindq("SELECT SOIL, COUNT(*) FROM IPARS GROUP BY REL").is_err());
        // Duplicate GROUP BY column.
        assert!(bindq("SELECT REL FROM IPARS GROUP BY REL, REL").is_err());
        // Duplicate aggregate item (would collide in the output schema).
        assert!(bindq("SELECT SUM(SOIL), SUM(SOIL) FROM IPARS GROUP BY REL").is_err());
        // Duplicate grouped column in the select list.
        assert!(bindq("SELECT REL, REL FROM IPARS GROUP BY REL").is_err());
        // Unknown names.
        assert!(bindq("SELECT COUNT(*) FROM IPARS GROUP BY BOGUS").is_err());
        assert!(bindq("SELECT SUM(BOGUS) FROM IPARS GROUP BY REL").is_err());
    }

    #[test]
    fn grouped_key_may_be_omitted_from_select() {
        let b = bindq("SELECT COUNT(*) FROM IPARS GROUP BY REL").unwrap();
        let spec = b.agg.as_ref().unwrap();
        assert_eq!(spec.group_by, vec![0]);
        assert_eq!(spec.output, vec![AggOutput::Agg(0)]);
        assert_eq!(b.output_schema().attributes()[0].name, "COUNT(*)");
    }
}
