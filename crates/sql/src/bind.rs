//! Name resolution: AST → bound query.
//!
//! Binding resolves column names to schema attribute indices, function
//! names to [`UdfRegistry`] slots, folds constant arithmetic, and
//! computes the projection. A [`BoundQuery`] is the hand-off format
//! between the SQL front-end and the layout compiler / runtime: all
//! string lookups are done exactly once, before any file is touched.

use dv_types::{DvError, Result, Schema};

use crate::ast::{ArithOp, CmpOp, Expr, Query, Scalar, SelectList};
use crate::udf::UdfRegistry;

/// A bound scalar expression: all names resolved to indices, constants
/// folded.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundScalar {
    /// Schema attribute by index.
    Attr(usize),
    /// Constant (integer literals widen losslessly for our domains).
    Const(f64),
    /// UDF call by registry slot.
    Func {
        slot: usize,
        args: Vec<BoundScalar>,
    },
    Arith {
        op: ArithOp,
        lhs: Box<BoundScalar>,
        rhs: Box<BoundScalar>,
    },
}

/// A bound boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    Cmp { op: CmpOp, lhs: BoundScalar, rhs: BoundScalar },
    InList { expr: BoundScalar, list: Vec<BoundScalar>, negated: bool },
    Between { expr: BoundScalar, lo: BoundScalar, hi: BoundScalar, negated: bool },
}

/// A fully-resolved query ready for planning and execution.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// Dataset name as written in `FROM` (matched case-insensitively
    /// against the descriptor's dataset name by the planner).
    pub dataset: String,
    /// Schema the query was bound against.
    pub schema: Schema,
    /// Indices of the selected attributes, in output order.
    pub projection: Vec<usize>,
    /// Bound WHERE clause, if any.
    pub predicate: Option<BoundExpr>,
}

impl BoundQuery {
    /// Schema of the result rows.
    pub fn output_schema(&self) -> Schema {
        self.schema.project(&self.projection)
    }

    /// Indices of every attribute the execution needs: the projection
    /// plus all attributes the predicate reads. Sorted, deduplicated.
    /// This is the *working set* the extraction service materializes —
    /// files holding none of these attributes are never opened.
    pub fn needed_attrs(&self) -> Vec<usize> {
        let mut out = self.projection.clone();
        if let Some(p) = &self.predicate {
            collect_expr_attrs(p, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn collect_expr_attrs(e: &BoundExpr, out: &mut Vec<usize>) {
    match e {
        BoundExpr::And(l, r) | BoundExpr::Or(l, r) => {
            collect_expr_attrs(l, out);
            collect_expr_attrs(r, out);
        }
        BoundExpr::Not(i) => collect_expr_attrs(i, out),
        BoundExpr::Cmp { lhs, rhs, .. } => {
            collect_scalar_attrs(lhs, out);
            collect_scalar_attrs(rhs, out);
        }
        BoundExpr::InList { expr, list, .. } => {
            collect_scalar_attrs(expr, out);
            for s in list {
                collect_scalar_attrs(s, out);
            }
        }
        BoundExpr::Between { expr, lo, hi, .. } => {
            collect_scalar_attrs(expr, out);
            collect_scalar_attrs(lo, out);
            collect_scalar_attrs(hi, out);
        }
    }
}

fn collect_scalar_attrs(s: &BoundScalar, out: &mut Vec<usize>) {
    match s {
        BoundScalar::Attr(i) => out.push(*i),
        BoundScalar::Const(_) => {}
        BoundScalar::Func { args, .. } => {
            for a in args {
                collect_scalar_attrs(a, out);
            }
        }
        BoundScalar::Arith { lhs, rhs, .. } => {
            collect_scalar_attrs(lhs, out);
            collect_scalar_attrs(rhs, out);
        }
    }
}

/// Bind a parsed query against a schema and UDF registry.
pub fn bind(query: &Query, schema: &Schema, udfs: &UdfRegistry) -> Result<BoundQuery> {
    let projection = match &query.select {
        SelectList::All => (0..schema.len()).collect(),
        SelectList::Columns(cols) => schema.resolve(cols)?,
    };
    let predicate = query.predicate.as_ref().map(|p| bind_expr(p, schema, udfs)).transpose()?;
    Ok(BoundQuery { dataset: query.dataset.clone(), schema: schema.clone(), projection, predicate })
}

fn bind_expr(e: &Expr, schema: &Schema, udfs: &UdfRegistry) -> Result<BoundExpr> {
    Ok(match e {
        Expr::And(l, r) => BoundExpr::And(
            Box::new(bind_expr(l, schema, udfs)?),
            Box::new(bind_expr(r, schema, udfs)?),
        ),
        Expr::Or(l, r) => BoundExpr::Or(
            Box::new(bind_expr(l, schema, udfs)?),
            Box::new(bind_expr(r, schema, udfs)?),
        ),
        Expr::Not(i) => BoundExpr::Not(Box::new(bind_expr(i, schema, udfs)?)),
        Expr::Cmp { op, lhs, rhs } => BoundExpr::Cmp {
            op: *op,
            lhs: bind_scalar(lhs, schema, udfs)?,
            rhs: bind_scalar(rhs, schema, udfs)?,
        },
        Expr::InList { expr, list, negated } => BoundExpr::InList {
            expr: bind_scalar(expr, schema, udfs)?,
            list: list.iter().map(|s| bind_scalar(s, schema, udfs)).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between { expr, lo, hi, negated } => BoundExpr::Between {
            expr: bind_scalar(expr, schema, udfs)?,
            lo: bind_scalar(lo, schema, udfs)?,
            hi: bind_scalar(hi, schema, udfs)?,
            negated: *negated,
        },
    })
}

fn bind_scalar(s: &Scalar, schema: &Schema, udfs: &UdfRegistry) -> Result<BoundScalar> {
    Ok(match s {
        Scalar::Column(name) => {
            let idx = schema.index_of(name).ok_or_else(|| {
                DvError::Binding(format!("unknown attribute `{name}` in schema `{}`", schema.name))
            })?;
            BoundScalar::Attr(idx)
        }
        Scalar::IntLit(v) => BoundScalar::Const(*v as f64),
        Scalar::FloatLit(v) => BoundScalar::Const(*v),
        Scalar::Neg(inner) => {
            let b = bind_scalar(inner, schema, udfs)?;
            match b {
                BoundScalar::Const(v) => BoundScalar::Const(-v),
                other => BoundScalar::Arith {
                    op: ArithOp::Sub,
                    lhs: Box::new(BoundScalar::Const(0.0)),
                    rhs: Box::new(other),
                },
            }
        }
        Scalar::Func { name, args } => {
            // A bare call like `Speed()` pulls the function's
            // registered implicit argument attributes.
            let bound_args: Vec<BoundScalar> = if args.is_empty() {
                let implicit = udfs.implicit_args(name)?.to_vec();
                implicit
                    .iter()
                    .map(|attr| bind_scalar(&Scalar::Column(attr.clone()), schema, udfs))
                    .collect::<Result<_>>()?
            } else {
                args.iter().map(|a| bind_scalar(a, schema, udfs)).collect::<Result<_>>()?
            };
            let slot = udfs.resolve(name, bound_args.len())?;
            BoundScalar::Func { slot, args: bound_args }
        }
        Scalar::Arith { op, lhs, rhs } => {
            let l = bind_scalar(lhs, schema, udfs)?;
            let r = bind_scalar(rhs, schema, udfs)?;
            match (&l, &r) {
                // Constant folding: loop-bound arithmetic like 100*4+1
                // disappears at bind time.
                (BoundScalar::Const(a), BoundScalar::Const(b)) => {
                    BoundScalar::Const(op.apply(*a, *b))
                }
                _ => BoundScalar::Arith { op: *op, lhs: Box::new(l), rhs: Box::new(r) },
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use dv_types::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(
            "IPARS",
            vec![
                Attribute::new("REL", DataType::Short),
                Attribute::new("TIME", DataType::Int),
                Attribute::new("SOIL", DataType::Float),
                Attribute::new("OILVX", DataType::Float),
                Attribute::new("OILVY", DataType::Float),
                Attribute::new("OILVZ", DataType::Float),
            ],
        )
        .unwrap()
    }

    fn bindq(sql: &str) -> Result<BoundQuery> {
        let q = parse(sql)?;
        bind(&q, &schema(), &UdfRegistry::with_builtins())
    }

    #[test]
    fn star_projects_all() {
        let b = bindq("SELECT * FROM IPARS").unwrap();
        assert_eq!(b.projection, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(b.output_schema().len(), 6);
    }

    #[test]
    fn named_projection_order_kept() {
        let b = bindq("SELECT soil, rel FROM IPARS").unwrap();
        assert_eq!(b.projection, vec![2, 0]);
        assert_eq!(b.output_schema().attributes()[0].name, "SOIL");
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(bindq("SELECT * FROM IPARS WHERE BOGUS > 1").is_err());
        assert!(bindq("SELECT BOGUS FROM IPARS").is_err());
    }

    #[test]
    fn needed_attrs_union_select_and_where() {
        let b =
            bindq("SELECT SOIL FROM IPARS WHERE TIME > 10 AND SPEED(OILVX, OILVY, OILVZ) < 30.0")
                .unwrap();
        assert_eq!(b.needed_attrs(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn constant_folding() {
        let b = bindq("SELECT * FROM IPARS WHERE TIME > 100 * 4 + 1").unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { rhs: BoundScalar::Const(v), .. } => assert_eq!(v, 401.0),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn negative_literal_folds() {
        let b = bindq("SELECT * FROM IPARS WHERE TIME > -5").unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { rhs: BoundScalar::Const(v), .. } => assert_eq!(v, -5.0),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn udf_resolved_to_slot() {
        let b = bindq("SELECT * FROM IPARS WHERE SPEED(OILVX, OILVY, OILVZ) <= 30.0").unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { lhs: BoundScalar::Func { args, .. }, .. } => {
                assert_eq!(args.len(), 3);
                assert_eq!(args[0], BoundScalar::Attr(3));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn bare_udf_uses_implicit_args() {
        let mut udfs = UdfRegistry::with_builtins();
        udfs.register_with_implicit_args(
            "SPEED",
            Some(3),
            vec!["OILVX".into(), "OILVY".into(), "OILVZ".into()],
            |a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt(),
        );
        let q = parse("SELECT * FROM IPARS WHERE Speed() < 30").unwrap();
        let b = bind(&q, &schema(), &udfs).unwrap();
        match b.predicate.unwrap() {
            BoundExpr::Cmp { lhs: BoundScalar::Func { args, .. }, .. } => {
                assert_eq!(
                    args,
                    vec![BoundScalar::Attr(3), BoundScalar::Attr(4), BoundScalar::Attr(5)]
                );
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn bare_udf_without_implicit_args_fails_arity() {
        // Builtin SPEED has arity 3 but no implicit args registered.
        assert!(bindq("SELECT * FROM IPARS WHERE SPEED() < 30").is_err());
    }
}
