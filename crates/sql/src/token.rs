//! Token stream shared by the SQL lexer and parser.

use std::fmt;

/// A lexical token with its source position (1-based line/column, used
/// in error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub column: u32,
}

/// Token kinds of the SQL subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords (recognized case-insensitively).
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    In,
    Between,
    Group,
    By,
    // Literals and identifiers.
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    // Punctuation / operators.
    Star,
    Comma,
    LParen,
    RParen,
    Plus,
    Minus,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Statement terminator (optional trailing `;`).
    Semi,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Select => write!(f, "SELECT"),
            TokenKind::From => write!(f, "FROM"),
            TokenKind::Where => write!(f, "WHERE"),
            TokenKind::And => write!(f, "AND"),
            TokenKind::Or => write!(f, "OR"),
            TokenKind::Not => write!(f, "NOT"),
            TokenKind::In => write!(f, "IN"),
            TokenKind::Between => write!(f, "BETWEEN"),
            TokenKind::Group => write!(f, "GROUP"),
            TokenKind::By => write!(f, "BY"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::IntLit(v) => write!(f, "{v}"),
            TokenKind::FloatLit(v) => write!(f, "{v}"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Eof => write!(f, "<end of query>"),
        }
    }
}
