//! Planner and executor: SQL (dv-sql AST) over heap files and B+tree
//! indexes.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dv_sql::analysis::attribute_ranges;
use dv_sql::eval::EvalContext;
use dv_sql::{bind, parse, BoundQuery, UdfRegistry};
use dv_types::{DvError, Interval, Result, Row, Schema, Table};

use crate::btree::{build as btree_build, BTreeIndex};
use crate::catalog::{Catalog, IndexMeta, TableMeta};
use crate::heap::{HeapFile, HeapWriter};

/// Which access path the planner chose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanKind {
    /// Full sequential scan of the heap.
    Seq,
    /// B+tree index scan on one attribute.
    Index { attr: String },
}

/// Statistics of one query execution.
#[derive(Debug, Clone)]
pub struct ExecStats {
    pub scan: ScanKind,
    /// Tuples visited (heap tuples decoded).
    pub rows_scanned: u64,
    /// Rows returned after filtering.
    pub rows_returned: u64,
    /// Bytes read from heap and index pages.
    pub bytes_read: u64,
    /// Wall time.
    pub elapsed: Duration,
}

/// Storage statistics of one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: u64,
    pub heap_bytes: u64,
    pub index_bytes: u64,
}

impl TableStats {
    /// Total on-disk footprint.
    pub fn total_bytes(&self) -> u64 {
        self.heap_bytes + self.index_bytes
    }
}

/// Statistics of a bulk load.
#[derive(Debug, Clone)]
pub struct LoadStats {
    pub rows: u64,
    pub heap_bytes: u64,
    pub elapsed: Duration,
}

/// The embedded row store.
pub struct MiniDb {
    dir: PathBuf,
    catalog: Catalog,
    udfs: UdfRegistry,
    /// Planner threshold: an index scan is chosen when the estimated
    /// selectivity is below this fraction (PostgreSQL-ish default).
    pub index_threshold: f64,
}

impl MiniDb {
    /// Open (or initialize) a database directory.
    pub fn open(dir: &Path, udfs: UdfRegistry) -> Result<MiniDb> {
        std::fs::create_dir_all(dir).map_err(|e| DvError::io(dir.display().to_string(), e))?;
        let catalog = Catalog::load(dir)?;
        Ok(MiniDb { dir: dir.to_path_buf(), catalog, udfs, index_threshold: 0.15 })
    }

    /// Bulk-load a table (the `COPY` step of the paper's "load into a
    /// DBMS" workflow). Replaces any existing table of the same name.
    pub fn load_table(
        &mut self,
        schema: &Schema,
        rows: impl Iterator<Item = Row>,
    ) -> Result<LoadStats> {
        let start = Instant::now();
        let name = schema.name.clone();
        let heap_name = format!("{}.heap", name.to_ascii_lowercase());
        let mut w = HeapWriter::create(&self.dir.join(&heap_name))?;
        let mut count = 0u64;
        for row in rows {
            w.insert(&row)?;
            count += 1;
        }
        let (_pages, tuples) = w.finish()?;
        debug_assert_eq!(tuples, count);
        let heap_bytes = std::fs::metadata(self.dir.join(&heap_name))
            .map_err(|e| DvError::io(heap_name.clone(), e))?
            .len();
        self.catalog.tables.insert(
            name,
            TableMeta { schema: schema.clone(), heap: heap_name, rows: count, indexes: vec![] },
        );
        self.catalog.save(&self.dir)?;
        Ok(LoadStats { rows: count, heap_bytes, elapsed: start.elapsed() })
    }

    /// Build a B+tree index on `attr` (sequential scan + bulk build).
    pub fn create_index(&mut self, table: &str, attr: &str) -> Result<()> {
        let meta = self.catalog.table(table)?.clone();
        let attr_idx = meta
            .schema
            .index_of(attr)
            .ok_or_else(|| DvError::MiniDb(format!("no attribute `{attr}` in table `{table}`")))?;
        let upper = meta.schema.attr_at(attr_idx).name.clone();
        let heap = HeapFile::open(&Catalog::heap_path(&self.dir, &meta))?;
        let mut entries = Vec::with_capacity(meta.rows as usize);
        heap.scan(&meta.schema, |tid, row| {
            entries.push((row[attr_idx].as_f64(), tid));
        })?;
        let file = format!("{}.{}.idx", table.to_ascii_lowercase(), upper.to_ascii_lowercase());
        btree_build(&self.dir.join(&file), entries)?;
        let table_meta =
            self.catalog.tables.get_mut(&table.to_ascii_uppercase()).expect("table just looked up");
        table_meta.indexes.retain(|i| i.attr != upper);
        table_meta.indexes.push(IndexMeta { attr: upper, file });
        self.catalog.save(&self.dir)
    }

    /// Storage statistics of a table.
    pub fn table_stats(&self, table: &str) -> Result<TableStats> {
        let meta = self.catalog.table(table)?;
        let heap_bytes = std::fs::metadata(Catalog::heap_path(&self.dir, meta))
            .map_err(|e| DvError::io(meta.heap.clone(), e))?
            .len();
        let mut index_bytes = 0;
        for idx in &meta.indexes {
            index_bytes += std::fs::metadata(self.dir.join(&idx.file))
                .map_err(|e| DvError::io(idx.file.clone(), e))?
                .len();
        }
        Ok(TableStats { rows: meta.rows, heap_bytes, index_bytes })
    }

    /// Schema of a table.
    pub fn schema(&self, table: &str) -> Result<&Schema> {
        Ok(&self.catalog.table(table)?.schema)
    }

    /// Execute a query.
    pub fn query(&self, sql: &str) -> Result<(Table, ExecStats)> {
        let ast = parse(sql)?;
        let meta = self.catalog.table(&ast.dataset)?;
        let bq = bind(&ast, &meta.schema, &self.udfs)?;
        self.execute_bound(meta, &bq)
    }

    fn execute_bound(&self, meta: &TableMeta, bq: &BoundQuery) -> Result<(Table, ExecStats)> {
        let start = Instant::now();
        let schema = &meta.schema;
        let heap = HeapFile::open(&Catalog::heap_path(&self.dir, meta))?;
        let identity: Vec<usize> = (0..schema.len()).collect();
        let cx = EvalContext::new(schema.len(), &identity, &self.udfs);

        // Plan: find the most selective usable index.
        let ranges = bq.predicate.as_ref().map(attribute_ranges).unwrap_or_default();
        let mut best: Option<(f64, &IndexMeta, Vec<Interval>)> = None;
        for idx_meta in &meta.indexes {
            let Some(attr_idx) = schema.index_of(&idx_meta.attr) else { continue };
            let Some(set) = ranges.get(&attr_idx) else { continue };
            if set.is_all() {
                continue;
            }
            let index = BTreeIndex::open(&self.dir.join(&idx_meta.file))?;
            let intervals: Vec<Interval> = set.intervals().to_vec();
            let selectivity: f64 = intervals
                .iter()
                .map(|iv| index.estimate_selectivity(iv.lo, iv.hi))
                .sum::<f64>()
                .min(1.0);
            if best.as_ref().map(|(s, _, _)| selectivity < *s).unwrap_or(true) {
                best = Some((selectivity, idx_meta, intervals));
            }
        }

        let mut table = Table::empty(bq.output_schema());
        let mut rows_scanned = 0u64;
        let mut bytes_read = 0u64;
        let scan = match best {
            Some((sel, idx_meta, intervals)) if sel < self.index_threshold => {
                let index = BTreeIndex::open(&self.dir.join(&idx_meta.file))?;
                let mut tids = Vec::new();
                for iv in intervals {
                    index.range_visit(iv.lo, iv.hi, |tid| tids.push(tid))?;
                }
                // Index leaf pages touched (16 bytes per entry).
                bytes_read += (tids.len() as u64 * 16).next_multiple_of(8192);
                // Page-ordered fetch for locality (bitmap-heap-scan
                // style).
                tids.sort_unstable();
                tids.dedup();
                let mut current_page: Option<(u32, crate::page::Page)> = None;
                for tid in tids {
                    let page = match &current_page {
                        Some((no, p)) if *no == tid.page => p,
                        _ => {
                            current_page = Some((tid.page, heap.read_page(tid.page)?));
                            bytes_read += crate::page::PAGE_SIZE as u64;
                            &current_page.as_ref().unwrap().1
                        }
                    };
                    let row = crate::tuple::decode(schema, page.tuple(tid.slot));
                    rows_scanned += 1;
                    let keep = match &bq.predicate {
                        Some(p) => cx.eval(p, &row),
                        None => true,
                    };
                    if keep {
                        table.rows.push(bq.projection.iter().map(|&i| row[i]).collect());
                    }
                }
                ScanKind::Index { attr: idx_meta.attr.clone() }
            }
            _ => {
                bytes_read += heap.bytes();
                let mut err = None;
                heap.scan(schema, |_tid, row| {
                    rows_scanned += 1;
                    let keep = match &bq.predicate {
                        Some(p) => cx.eval(p, &row),
                        None => true,
                    };
                    if keep {
                        table.rows.push(bq.projection.iter().map(|&i| row[i]).collect());
                    }
                })
                .unwrap_or_else(|e| err = Some(e));
                if let Some(e) = err {
                    return Err(e);
                }
                ScanKind::Seq
            }
        };

        let stats = ExecStats {
            scan,
            rows_scanned,
            rows_returned: table.rows.len() as u64,
            bytes_read,
            elapsed: start.elapsed(),
        };
        Ok((table, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_types::{Attribute, DataType, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dv-minidb-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn demo_schema() -> Schema {
        Schema::new(
            "DEMO",
            vec![
                Attribute::new("ID", DataType::Int),
                Attribute::new("CAT", DataType::Short),
                Attribute::new("VAL", DataType::Double),
            ],
        )
        .unwrap()
    }

    fn demo_rows(n: i32) -> impl Iterator<Item = Row> {
        (0..n).map(|i| {
            vec![Value::Int(i), Value::Short((i % 10) as i16), Value::Double(i as f64 / 100.0)]
        })
    }

    fn loaded(tag: &str, n: i32) -> MiniDb {
        let dir = tmpdir(tag);
        let mut db = MiniDb::open(&dir, UdfRegistry::with_builtins()).unwrap();
        db.load_table(&demo_schema(), demo_rows(n)).unwrap();
        db
    }

    #[test]
    fn load_and_full_scan() {
        let db = loaded("scan", 10_000);
        let (t, stats) = db.query("SELECT * FROM DEMO").unwrap();
        assert_eq!(t.len(), 10_000);
        assert_eq!(stats.scan, ScanKind::Seq);
        assert_eq!(stats.rows_scanned, 10_000);
    }

    #[test]
    fn filter_without_index_is_seq() {
        let db = loaded("noidx", 5_000);
        let (t, stats) = db.query("SELECT ID FROM DEMO WHERE VAL < 0.5").unwrap();
        assert_eq!(t.len(), 50);
        assert_eq!(stats.scan, ScanKind::Seq);
    }

    #[test]
    fn selective_query_uses_index() {
        let dir = tmpdir("idx");
        let mut db = MiniDb::open(&dir, UdfRegistry::with_builtins()).unwrap();
        db.load_table(&demo_schema(), demo_rows(50_000)).unwrap();
        db.create_index("DEMO", "ID").unwrap();
        let (t, stats) = db.query("SELECT * FROM DEMO WHERE ID >= 100 AND ID <= 199").unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(stats.scan, ScanKind::Index { attr: "ID".into() });
        // Index scan touched ~100 tuples, not 50k.
        assert!(stats.rows_scanned <= 110, "{}", stats.rows_scanned);
    }

    #[test]
    fn unselective_query_falls_back_to_seq() {
        let dir = tmpdir("unsel");
        let mut db = MiniDb::open(&dir, UdfRegistry::with_builtins()).unwrap();
        db.load_table(&demo_schema(), demo_rows(20_000)).unwrap();
        db.create_index("DEMO", "ID").unwrap();
        let (t, stats) = db.query("SELECT * FROM DEMO WHERE ID >= 0").unwrap();
        assert_eq!(t.len(), 20_000);
        assert_eq!(stats.scan, ScanKind::Seq);
    }

    #[test]
    fn index_scan_result_equals_seq_scan() {
        let dir = tmpdir("equiv");
        let mut db = MiniDb::open(&dir, UdfRegistry::with_builtins()).unwrap();
        db.load_table(&demo_schema(), demo_rows(30_000)).unwrap();
        let sql = "SELECT ID, VAL FROM DEMO WHERE ID BETWEEN 5000 AND 5999 AND CAT = 3";
        let (seq, s1) = db.query(sql).unwrap();
        assert_eq!(s1.scan, ScanKind::Seq);
        db.create_index("DEMO", "ID").unwrap();
        let (idx, s2) = db.query(sql).unwrap();
        assert!(matches!(s2.scan, ScanKind::Index { .. }));
        assert!(seq.same_rows(&idx));
        assert_eq!(seq.len(), 100);
    }

    #[test]
    fn in_list_uses_index_probes() {
        let dir = tmpdir("inlist");
        let mut db = MiniDb::open(&dir, UdfRegistry::with_builtins()).unwrap();
        db.load_table(&demo_schema(), demo_rows(40_000)).unwrap();
        db.create_index("DEMO", "ID").unwrap();
        let (t, stats) = db.query("SELECT * FROM DEMO WHERE ID IN (5, 500, 39999)").unwrap();
        assert_eq!(t.len(), 3);
        assert!(matches!(stats.scan, ScanKind::Index { .. }));
        assert!(stats.rows_scanned <= 3);
    }

    #[test]
    fn storage_expansion_roughly_3x() {
        let db = loaded("expand", 50_000);
        let mut db = db;
        db.create_index("DEMO", "ID").unwrap();
        db.create_index("DEMO", "VAL").unwrap();
        let stats = db.table_stats("DEMO").unwrap();
        let raw = 50_000u64 * 14; // 4 + 2 + 8 raw bytes/row
        let ratio = stats.total_bytes() as f64 / raw as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "expansion ratio {ratio}");
    }

    #[test]
    fn udf_filter_works() {
        let db = loaded("udf", 1_000);
        let (t, _) = db.query("SELECT ID FROM DEMO WHERE DISTANCE(VAL, VAL, VAL) < 0.1").unwrap();
        // sqrt(3 v²) < 0.1 → v < 0.0577 → ids 0..=5.
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn catalog_persists_across_reopen() {
        let dir = tmpdir("persist");
        {
            let mut db = MiniDb::open(&dir, UdfRegistry::with_builtins()).unwrap();
            db.load_table(&demo_schema(), demo_rows(100)).unwrap();
            db.create_index("DEMO", "ID").unwrap();
        }
        let db = MiniDb::open(&dir, UdfRegistry::with_builtins()).unwrap();
        let (t, stats) = db.query("SELECT * FROM DEMO WHERE ID = 42").unwrap();
        assert_eq!(t.len(), 1);
        assert!(matches!(stats.scan, ScanKind::Index { .. }));
    }

    #[test]
    fn unknown_table_rejected() {
        let db = loaded("unknown", 10);
        assert!(db.query("SELECT * FROM NOPE").is_err());
    }
}
