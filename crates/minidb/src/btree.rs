//! On-disk B+tree secondary index, bulk-loaded.
//!
//! Keys are `f64` views of the indexed attribute (total order matches
//! query comparison semantics); payloads are [`TupleId`]s. The tree is
//! built bottom-up from sorted entries at `CREATE INDEX` time —
//! read-only datasets never need incremental insertion.
//!
//! File format (8 KiB pages):
//!
//! ```text
//! page 0           : magic "DVBT", root u32, height u32,
//!                    nentries u64, min f64, max f64
//! node page header : is_leaf u8, pad u8, nkeys u16, next_leaf u32
//! leaf entry (16B) : key f64, page u32, slot u16, pad u16
//! inner entry (16B): max_key f64, child u32, pad u32
//! ```

use std::fs::File;
use std::io::{BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use dv_types::{DvError, Result};

use crate::heap::TupleId;
use crate::page::PAGE_SIZE;

const MAGIC: &[u8; 4] = b"DVBT";
const NODE_HEADER: usize = 8;
const ENTRY: usize = 16;
const CAPACITY: usize = (PAGE_SIZE - NODE_HEADER) / ENTRY;
const NO_NEXT: u32 = u32::MAX;

/// Build a B+tree index file from `entries` (must be sorted by key;
/// duplicates allowed). Returns the number of entries written.
pub fn build(path: &Path, mut entries: Vec<(f64, TupleId)>) -> Result<u64> {
    entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let to_err = |e: std::io::Error| DvError::io(path.display().to_string(), e);
    let file = File::create(path).map_err(to_err)?;
    let mut w = BufWriter::new(file);

    // Reserve the meta page.
    w.write_all(&[0u8; PAGE_SIZE]).map_err(to_err)?;
    let mut next_page: u32 = 1;

    let (min_key, max_key) = match (entries.first(), entries.last()) {
        (Some(f), Some(l)) => (f.0, l.0),
        _ => (f64::INFINITY, f64::NEG_INFINITY),
    };
    let nentries = entries.len() as u64;

    // --- leaves ---
    let mut level: Vec<(f64, u32)> = Vec::new(); // (max key, page)
    {
        let chunks: Vec<&[(f64, TupleId)]> = entries.chunks(CAPACITY).collect();
        let first_leaf_page = next_page;
        for (i, chunk) in chunks.iter().enumerate() {
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = 1; // leaf
            page[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            let next = if i + 1 < chunks.len() { first_leaf_page + i as u32 + 1 } else { NO_NEXT };
            page[4..8].copy_from_slice(&next.to_le_bytes());
            for (j, (key, tid)) in chunk.iter().enumerate() {
                let at = NODE_HEADER + j * ENTRY;
                page[at..at + 8].copy_from_slice(&key.to_le_bytes());
                page[at + 8..at + 12].copy_from_slice(&tid.page.to_le_bytes());
                page[at + 12..at + 14].copy_from_slice(&tid.slot.to_le_bytes());
            }
            w.write_all(&page).map_err(to_err)?;
            level.push((chunk.last().unwrap().0, next_page));
            next_page += 1;
        }
        if chunks.is_empty() {
            // Single empty leaf so searches have somewhere to land.
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = 1;
            page[4..8].copy_from_slice(&NO_NEXT.to_le_bytes());
            w.write_all(&page).map_err(to_err)?;
            level.push((f64::NEG_INFINITY, next_page));
            next_page += 1;
        }
    }

    // --- internal levels ---
    let mut height = 1u32;
    while level.len() > 1 {
        let mut next_level = Vec::with_capacity(level.len().div_ceil(CAPACITY));
        for chunk in level.chunks(CAPACITY) {
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = 0;
            page[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            page[4..8].copy_from_slice(&NO_NEXT.to_le_bytes());
            for (j, (max_key, child)) in chunk.iter().enumerate() {
                let at = NODE_HEADER + j * ENTRY;
                page[at..at + 8].copy_from_slice(&max_key.to_le_bytes());
                page[at + 8..at + 12].copy_from_slice(&child.to_le_bytes());
            }
            w.write_all(&page).map_err(to_err)?;
            next_level.push((chunk.last().unwrap().0, next_page));
            next_page += 1;
        }
        level = next_level;
        height += 1;
    }
    let root = level[0].1;
    w.flush().map_err(to_err)?;
    drop(w);

    // Meta page.
    let mut meta = vec![0u8; PAGE_SIZE];
    meta[0..4].copy_from_slice(MAGIC);
    meta[4..8].copy_from_slice(&root.to_le_bytes());
    meta[8..12].copy_from_slice(&height.to_le_bytes());
    meta[16..24].copy_from_slice(&nentries.to_le_bytes());
    meta[24..32].copy_from_slice(&min_key.to_le_bytes());
    meta[32..40].copy_from_slice(&max_key.to_le_bytes());
    let file = std::fs::OpenOptions::new().write(true).open(path).map_err(to_err)?;
    file.write_all_at(&meta, 0).map_err(to_err)?;
    Ok(nentries)
}

/// Read side of a B+tree index.
pub struct BTreeIndex {
    file: File,
    path: PathBuf,
    root: u32,
    /// Number of indexed entries.
    pub entries: u64,
    /// Smallest key (`+inf` when empty).
    pub min_key: f64,
    /// Largest key (`-inf` when empty).
    pub max_key: f64,
}

impl BTreeIndex {
    /// Open an index file.
    pub fn open(path: &Path) -> Result<BTreeIndex> {
        let to_err = |e: std::io::Error| DvError::io(path.display().to_string(), e);
        let file = File::open(path).map_err(to_err)?;
        let mut meta = [0u8; 40];
        file.read_exact_at(&mut meta, 0).map_err(to_err)?;
        if &meta[0..4] != MAGIC {
            return Err(DvError::MiniDb(format!("{} is not a B+tree index file", path.display())));
        }
        Ok(BTreeIndex {
            file,
            path: path.to_path_buf(),
            root: u32::from_le_bytes(meta[4..8].try_into().unwrap()),
            entries: u64::from_le_bytes(meta[16..24].try_into().unwrap()),
            min_key: f64::from_le_bytes(meta[24..32].try_into().unwrap()),
            max_key: f64::from_le_bytes(meta[32..40].try_into().unwrap()),
        })
    }

    fn read_page(&self, page_no: u32) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut buf, page_no as u64 * PAGE_SIZE as u64)
            .map_err(|e| DvError::io(self.path.display().to_string(), e))?;
        Ok(buf)
    }

    /// Estimated fraction of entries falling in `[lo, hi]`, assuming a
    /// uniform key distribution over `[min, max]` — the planner's
    /// selectivity estimate.
    pub fn estimate_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.entries == 0 || lo > hi {
            return 0.0;
        }
        let span = self.max_key - self.min_key;
        if span <= 0.0 {
            return 1.0;
        }
        let clipped = (hi.min(self.max_key) - lo.max(self.min_key)).max(0.0);
        (clipped / span).clamp(0.0, 1.0)
    }

    /// Collect all tuple ids with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: f64, hi: f64) -> Result<Vec<TupleId>> {
        let mut out = Vec::new();
        self.range_visit(lo, hi, |tid| out.push(tid))?;
        Ok(out)
    }

    /// Visit tuple ids with `lo <= key <= hi`.
    pub fn range_visit(&self, lo: f64, hi: f64, mut visit: impl FnMut(TupleId)) -> Result<()> {
        if lo > hi || self.entries == 0 {
            return Ok(());
        }
        // Descend to the first leaf whose max key >= lo.
        let mut page_no = self.root;
        loop {
            let page = self.read_page(page_no)?;
            let is_leaf = page[0] == 1;
            let nkeys = u16::from_le_bytes(page[2..4].try_into().unwrap()) as usize;
            if is_leaf {
                break;
            }
            let mut child = None;
            for j in 0..nkeys {
                let at = NODE_HEADER + j * ENTRY;
                let max_key = f64::from_le_bytes(page[at..at + 8].try_into().unwrap());
                if max_key >= lo {
                    child = Some(u32::from_le_bytes(page[at + 8..at + 12].try_into().unwrap()));
                    break;
                }
            }
            match child {
                Some(c) => page_no = c,
                None => return Ok(()), // lo beyond every key
            }
        }
        // Walk leaves until past hi.
        loop {
            let page = self.read_page(page_no)?;
            let nkeys = u16::from_le_bytes(page[2..4].try_into().unwrap()) as usize;
            let next = u32::from_le_bytes(page[4..8].try_into().unwrap());
            for j in 0..nkeys {
                let at = NODE_HEADER + j * ENTRY;
                let key = f64::from_le_bytes(page[at..at + 8].try_into().unwrap());
                if key < lo {
                    continue;
                }
                if key > hi {
                    return Ok(());
                }
                visit(TupleId {
                    page: u32::from_le_bytes(page[at + 8..at + 12].try_into().unwrap()),
                    slot: u16::from_le_bytes(page[at + 12..at + 14].try_into().unwrap()),
                });
            }
            if next == NO_NEXT {
                return Ok(());
            }
            page_no = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dv-minidb-btree-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(format!("{tag}.idx"))
    }

    fn tid(i: u64) -> TupleId {
        TupleId { page: (i / 100) as u32, slot: (i % 100) as u16 }
    }

    #[test]
    fn range_scan_matches_filter() {
        let path = tmpfile("range");
        let entries: Vec<(f64, TupleId)> =
            (0..10_000u64).map(|i| ((i as f64 * 7.0) % 1000.0, tid(i))).collect();
        build(&path, entries.clone()).unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        assert_eq!(idx.entries, 10_000);

        for (lo, hi) in [(0.0, 50.0), (333.0, 334.0), (999.0, 2000.0), (-10.0, -1.0)] {
            let mut expect: Vec<TupleId> =
                entries.iter().filter(|(k, _)| *k >= lo && *k <= hi).map(|(_, t)| *t).collect();
            expect.sort();
            let mut got = idx.range(lo, hi).unwrap();
            got.sort();
            assert_eq!(got, expect, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn multi_level_tree() {
        // > CAPACITY^2 entries forces height 3.
        let n = 300_000u64;
        let path = tmpfile("tall");
        let entries: Vec<(f64, TupleId)> = (0..n).map(|i| (i as f64, tid(i))).collect();
        build(&path, entries).unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        let got = idx.range(150_000.0, 150_004.0).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], tid(150_000));
        // Point query.
        assert_eq!(idx.range(7.0, 7.0).unwrap(), vec![tid(7)]);
        // Out of range.
        assert!(idx.range(n as f64 + 1.0, n as f64 + 2.0).unwrap().is_empty());
    }

    #[test]
    fn duplicates_preserved() {
        let path = tmpfile("dups");
        let entries: Vec<(f64, TupleId)> = (0..500u64).map(|i| (42.0, tid(i))).collect();
        build(&path, entries).unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        assert_eq!(idx.range(42.0, 42.0).unwrap().len(), 500);
        assert_eq!(idx.range(41.9, 41.99).unwrap().len(), 0);
    }

    #[test]
    fn empty_index() {
        let path = tmpfile("empty");
        build(&path, Vec::new()).unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        assert_eq!(idx.entries, 0);
        assert!(idx.range(f64::NEG_INFINITY, f64::INFINITY).unwrap().is_empty());
        assert_eq!(idx.estimate_selectivity(0.0, 1.0), 0.0);
    }

    #[test]
    fn selectivity_estimates() {
        let path = tmpfile("sel");
        let entries: Vec<(f64, TupleId)> = (0..1000u64).map(|i| (i as f64, tid(i))).collect();
        build(&path, entries).unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        let s = idx.estimate_selectivity(0.0, 99.0);
        assert!((s - 0.1).abs() < 0.01, "{s}");
        assert_eq!(idx.estimate_selectivity(2000.0, 3000.0), 0.0);
        assert!((idx.estimate_selectivity(f64::NEG_INFINITY, f64::INFINITY) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("bad");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(BTreeIndex::open(&path).is_err());
    }

    #[test]
    fn unsorted_input_is_sorted_by_build() {
        let path = tmpfile("unsorted");
        let entries = vec![(5.0, tid(5)), (1.0, tid(1)), (3.0, tid(3))];
        build(&path, entries).unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        assert_eq!(idx.range(0.0, 10.0).unwrap(), vec![tid(1), tid(3), tid(5)]);
    }
}
