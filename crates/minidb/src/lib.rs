//! # dv-minidb
//!
//! An embedded, page-based relational row store — the "load the data
//! into a general-purpose DBMS" baseline of the paper's Figure 6
//! (PostgreSQL in the original evaluation; see DESIGN.md for the
//! substitution argument).
//!
//! Faithful to the costs that matter for that comparison:
//!
//! * **storage expansion** — tuples carry a PostgreSQL-like 24-byte
//!   header, payloads are MAXALIGN-padded, pages add line pointers and
//!   headers, and secondary B+trees add per-row entries, so a 6 GB raw
//!   scientific dataset loads to roughly 3× its size (18 GB in the
//!   paper);
//! * **load cost** — data must be copied through the tuple format and
//!   indexed before the first query;
//! * **query behaviour** — sequential scans read the whole (inflated)
//!   heap; B+tree index scans win only when selective.
//!
//! Components: [`page`] (slotted 8 KiB pages), [`tuple`] (header +
//! encoding), [`heap`] (heap files), [`btree`] (bulk-loaded on-disk
//! B+tree), [`catalog`] (persistent table metadata), [`db`] (planner +
//! executor over the dv-sql AST).

pub mod btree;
pub mod catalog;
pub mod db;
pub mod heap;
pub mod page;
pub mod tuple;

pub use db::{ExecStats, LoadStats, MiniDb, ScanKind, TableStats};
