//! Persistent catalog: table schemas, heap files, index files.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use dv_types::{DvError, Result, Schema};

/// One secondary index's metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexMeta {
    /// Indexed attribute name (upper-cased).
    pub attr: String,
    /// Index file name within the database directory.
    pub file: String,
}

/// One table's metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    pub schema: Schema,
    /// Heap file name within the database directory.
    pub heap: String,
    /// Row count recorded at load time (planner statistics).
    pub rows: u64,
    pub indexes: Vec<IndexMeta>,
}

/// The database catalog, persisted as `catalog.json`.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Catalog {
    pub tables: BTreeMap<String, TableMeta>,
}

impl Catalog {
    /// Load the catalog from a database directory (empty catalog when
    /// none exists yet).
    pub fn load(dir: &Path) -> Result<Catalog> {
        let path = dir.join("catalog.json");
        if !path.exists() {
            return Ok(Catalog::default());
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| DvError::io(path.display().to_string(), e))?;
        serde_json::from_str(&text)
            .map_err(|e| DvError::MiniDb(format!("corrupt catalog: {e}")))
    }

    /// Persist the catalog.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let path = dir.join("catalog.json");
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| DvError::MiniDb(format!("serialize catalog: {e}")))?;
        std::fs::write(&path, text).map_err(|e| DvError::io(path.display().to_string(), e))
    }

    /// Look up a table (case-insensitive).
    pub fn table(&self, name: &str) -> Result<&TableMeta> {
        let upper = name.to_ascii_uppercase();
        self.tables
            .get(&upper)
            .ok_or_else(|| DvError::MiniDb(format!("no such table `{name}`")))
    }

    /// Heap file path of a table.
    pub fn heap_path(dir: &Path, meta: &TableMeta) -> PathBuf {
        dir.join(&meta.heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_types::{Attribute, DataType};

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dv-minidb-cat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut cat = Catalog::default();
        cat.tables.insert(
            "T".into(),
            TableMeta {
                schema: Schema::new("T", vec![Attribute::new("A", DataType::Int)]).unwrap(),
                heap: "t.heap".into(),
                rows: 99,
                indexes: vec![IndexMeta { attr: "A".into(), file: "t.a.idx".into() }],
            },
        );
        cat.save(&dir).unwrap();
        let back = Catalog::load(&dir).unwrap();
        let meta = back.table("t").unwrap();
        assert_eq!(meta.rows, 99);
        assert_eq!(meta.indexes[0].attr, "A");
        assert!(back.table("missing").is_err());
    }

    #[test]
    fn missing_catalog_is_empty() {
        let dir =
            std::env::temp_dir().join(format!("dv-minidb-cat-none-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cat = Catalog::load(&dir).unwrap();
        assert!(cat.tables.is_empty());
    }
}
