//! Persistent catalog: table schemas, heap files, index files.
//!
//! The catalog is persisted as `catalog.json`. Serialization is
//! hand-rolled (the build environment carries no serde): the writer
//! emits a fixed, pretty-printed object shape and the reader is a
//! small recursive-descent JSON parser over exactly that shape.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use dv_types::{Attribute, DataType, DvError, Result, Schema};

/// One secondary index's metadata.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// Indexed attribute name (upper-cased).
    pub attr: String,
    /// Index file name within the database directory.
    pub file: String,
}

/// One table's metadata.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub schema: Schema,
    /// Heap file name within the database directory.
    pub heap: String,
    /// Row count recorded at load time (planner statistics).
    pub rows: u64,
    pub indexes: Vec<IndexMeta>,
}

/// The database catalog, persisted as `catalog.json`.
#[derive(Debug, Default)]
pub struct Catalog {
    pub tables: BTreeMap<String, TableMeta>,
}

impl Catalog {
    /// Load the catalog from a database directory (empty catalog when
    /// none exists yet).
    pub fn load(dir: &Path) -> Result<Catalog> {
        let path = dir.join("catalog.json");
        if !path.exists() {
            return Ok(Catalog::default());
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| DvError::io(path.display().to_string(), e))?;
        parse_catalog(&text).map_err(|e| DvError::MiniDb(format!("corrupt catalog: {e}")))
    }

    /// Persist the catalog.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let path = dir.join("catalog.json");
        let text = render_catalog(self);
        std::fs::write(&path, text).map_err(|e| DvError::io(path.display().to_string(), e))
    }

    /// Look up a table (case-insensitive).
    pub fn table(&self, name: &str) -> Result<&TableMeta> {
        let upper = name.to_ascii_uppercase();
        self.tables.get(&upper).ok_or_else(|| DvError::MiniDb(format!("no such table `{name}`")))
    }

    /// Heap file path of a table.
    pub fn heap_path(dir: &Path, meta: &TableMeta) -> PathBuf {
        dir.join(&meta.heap)
    }
}

// ---------------------------------------------------------------- writer

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_catalog(cat: &Catalog) -> String {
    let mut out = String::from("{\n  \"tables\": {");
    for (i, (name, meta)) in cat.tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json_string(name));
        out.push_str(": {\n      \"schema\": { \"name\": ");
        out.push_str(&json_string(&meta.schema.name));
        out.push_str(", \"attrs\": [");
        for (j, a) in meta.schema.attributes().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{ \"name\": {}, \"dtype\": {} }}",
                json_string(&a.name),
                json_string(a.dtype.descriptor_name())
            ));
        }
        out.push_str("] },\n      \"heap\": ");
        out.push_str(&json_string(&meta.heap));
        out.push_str(&format!(",\n      \"rows\": {},\n      \"indexes\": [", meta.rows));
        for (j, ix) in meta.indexes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{ \"attr\": {}, \"file\": {} }}",
                json_string(&ix.attr),
                json_string(&ix.file)
            ));
        }
        out.push_str("]\n    }");
    }
    out.push_str("\n  }\n}\n");
    out
}

// ---------------------------------------------------------------- reader

/// Minimal JSON value, sufficient for the catalog shape.
enum Json {
    Str(String),
    Num(u64),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> std::result::Result<&'a Json, String> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key `{key}`")),
            _ => Err(format!("expected object with key `{key}`")),
        }
    }

    fn as_str(&self) -> std::result::Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> std::result::Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, c: u8) -> std::result::Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> std::result::Result<Json, String> {
        match self.peek()? {
            b'"' => self.string().map(Json::Str),
            b'{' => self.object(),
            b'[' => self.array(),
            b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let slice =
                            self.bytes.get(start..start + width).ok_or("truncated UTF-8")?;
                        out.push_str(std::str::from_utf8(slice).map_err(|_| "bad UTF-8")?);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }

    fn object(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected `,` or `}}`, got `{}`", other as char)),
            }
            self.skip_ws();
        }
    }

    fn array(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got `{}`", other as char)),
            }
        }
    }
}

fn parse_catalog(text: &str) -> std::result::Result<Catalog, String> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    let root = p.value()?;
    let mut cat = Catalog::default();
    let tables = root.get("tables")?;
    let pairs = match tables {
        Json::Obj(pairs) => pairs,
        _ => return Err("`tables` must be an object".into()),
    };
    for (name, meta) in pairs {
        let schema_v = meta.get("schema")?;
        let schema_name = schema_v.get("name")?.as_str()?;
        let attrs_v = match schema_v.get("attrs")? {
            Json::Arr(items) => items,
            _ => return Err("`attrs` must be an array".into()),
        };
        let mut attrs = Vec::with_capacity(attrs_v.len());
        for a in attrs_v {
            let attr_name = a.get("name")?.as_str()?;
            let dtype = DataType::parse(a.get("dtype")?.as_str()?).map_err(|e| e.to_string())?;
            attrs.push(Attribute::new(attr_name, dtype));
        }
        let schema = Schema::new(schema_name, attrs).map_err(|e| e.to_string())?;
        let heap = meta.get("heap")?.as_str()?.to_string();
        let rows = match meta.get("rows")? {
            Json::Num(n) => *n,
            _ => return Err("`rows` must be a number".into()),
        };
        let indexes_v = match meta.get("indexes")? {
            Json::Arr(items) => items,
            _ => return Err("`indexes` must be an array".into()),
        };
        let mut indexes = Vec::with_capacity(indexes_v.len());
        for ix in indexes_v {
            indexes.push(IndexMeta {
                attr: ix.get("attr")?.as_str()?.to_string(),
                file: ix.get("file")?.as_str()?.to_string(),
            });
        }
        cat.tables.insert(name.clone(), TableMeta { schema, heap, rows, indexes });
    }
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_types::{Attribute, DataType};

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dv-minidb-cat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut cat = Catalog::default();
        cat.tables.insert(
            "T".into(),
            TableMeta {
                schema: Schema::new("T", vec![Attribute::new("A", DataType::Int)]).unwrap(),
                heap: "t.heap".into(),
                rows: 99,
                indexes: vec![IndexMeta { attr: "A".into(), file: "t.a.idx".into() }],
            },
        );
        cat.save(&dir).unwrap();
        let back = Catalog::load(&dir).unwrap();
        let meta = back.table("t").unwrap();
        assert_eq!(meta.rows, 99);
        assert_eq!(meta.indexes[0].attr, "A");
        assert!(back.table("missing").is_err());
    }

    #[test]
    fn missing_catalog_is_empty() {
        let dir = std::env::temp_dir().join(format!("dv-minidb-cat-none-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cat = Catalog::load(&dir).unwrap();
        assert!(cat.tables.is_empty());
    }

    #[test]
    fn corrupt_catalog_reports_error() {
        let dir = std::env::temp_dir().join(format!("dv-minidb-cat-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("catalog.json"), "{ \"tables\": [nope] }").unwrap();
        let err = Catalog::load(&dir).unwrap_err().to_string();
        assert!(err.contains("corrupt catalog"), "{err}");
    }

    #[test]
    fn multi_table_all_types_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dv-minidb-cat-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut cat = Catalog::default();
        let all = [
            DataType::Char,
            DataType::Short,
            DataType::Int,
            DataType::Long,
            DataType::Float,
            DataType::Double,
        ];
        let attrs: Vec<Attribute> =
            all.iter().enumerate().map(|(i, t)| Attribute::new(format!("A{i}"), *t)).collect();
        cat.tables.insert(
            "WIDE".into(),
            TableMeta {
                schema: Schema::new("WIDE", attrs).unwrap(),
                heap: "wide.heap".into(),
                rows: 0,
                indexes: vec![],
            },
        );
        cat.tables.insert(
            "E".into(),
            TableMeta {
                schema: Schema::new("E", vec![Attribute::new("K", DataType::Long)]).unwrap(),
                heap: "e.heap".into(),
                rows: u64::MAX,
                indexes: vec![IndexMeta { attr: "K".into(), file: "e.k.idx".into() }],
            },
        );
        cat.save(&dir).unwrap();
        let back = Catalog::load(&dir).unwrap();
        assert_eq!(back.tables.len(), 2);
        let wide = back.table("WIDE").unwrap();
        assert_eq!(wide.schema.len(), 6);
        for (i, t) in all.iter().enumerate() {
            assert_eq!(wide.schema.attr_at(i).dtype, *t);
        }
        assert_eq!(back.table("E").unwrap().rows, u64::MAX);
    }
}
