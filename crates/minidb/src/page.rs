//! Slotted 8 KiB pages, PostgreSQL-style.
//!
//! Layout:
//!
//! ```text
//! [ header: lower u16 | upper u16 | nslots u16 | reserved u16 ]
//! [ line pointers: (offset u16, len u16) × nslots ]  (grow down → up)
//! [ free space ]
//! [ tuple data ]                                      (grow up → down)
//! ```

/// Page size in bytes (PostgreSQL default).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 8;
const SLOT: usize = 4;

/// A mutable in-memory page.
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh empty page.
    pub fn new() -> Page {
        let mut p = Page { buf: Box::new([0u8; PAGE_SIZE]) };
        p.set_lower(HEADER as u16);
        p.set_upper(PAGE_SIZE as u16);
        p.set_nslots(0);
        p
    }

    /// Wrap an existing page image.
    pub fn from_bytes(bytes: &[u8]) -> Page {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf[..bytes.len().min(PAGE_SIZE)].copy_from_slice(&bytes[..bytes.len().min(PAGE_SIZE)]);
        Page { buf }
    }

    /// Raw page image.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    fn u16_at(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    fn set_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn lower(&self) -> u16 {
        self.u16_at(0)
    }
    fn set_lower(&mut self, v: u16) {
        self.set_u16(0, v)
    }
    fn upper(&self) -> u16 {
        self.u16_at(2)
    }
    fn set_upper(&mut self, v: u16) {
        self.set_u16(2, v)
    }

    /// Number of tuples on the page.
    pub fn nslots(&self) -> u16 {
        self.u16_at(4)
    }
    fn set_nslots(&mut self, v: u16) {
        self.set_u16(4, v)
    }

    /// Free bytes available for one more tuple (including its slot).
    pub fn free_space(&self) -> usize {
        (self.upper() as usize).saturating_sub(self.lower() as usize)
    }

    /// Append a tuple; returns its slot number, or `None` when the
    /// page is full.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<u16> {
        if tuple.len() + SLOT > self.free_space() {
            return None;
        }
        let slot = self.nslots();
        let new_upper = self.upper() as usize - tuple.len();
        self.buf[new_upper..new_upper + tuple.len()].copy_from_slice(tuple);
        let slot_at = HEADER + slot as usize * SLOT;
        self.set_u16(slot_at, new_upper as u16);
        self.set_u16(slot_at + 2, tuple.len() as u16);
        self.set_upper(new_upper as u16);
        self.set_lower((slot_at + SLOT) as u16);
        self.set_nslots(slot + 1);
        Some(slot)
    }

    /// Tuple bytes at `slot` (panics on an out-of-range slot — caller
    /// bugs, not data conditions).
    pub fn tuple(&self, slot: u16) -> &[u8] {
        assert!(slot < self.nslots(), "slot {slot} out of range");
        let slot_at = HEADER + slot as usize * SLOT;
        let off = self.u16_at(slot_at) as usize;
        let len = self.u16_at(slot_at + 2) as usize;
        &self.buf[off..off + len]
    }

    /// Iterate all tuples on the page.
    pub fn tuples(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.nslots()).map(move |s| self.tuple(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page() {
        let p = Page::new();
        assert_eq!(p.nslots(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER);
    }

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.tuple(0), b"hello");
        assert_eq!(p.tuple(1), b"world!");
        assert_eq!(p.tuples().count(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let tuple = vec![0xAB; 64];
        let mut count = 0;
        while p.insert(&tuple).is_some() {
            count += 1;
        }
        // 8184 / 68 = 120 tuples.
        assert_eq!(count, (PAGE_SIZE - HEADER) / (64 + SLOT));
        assert!(p.free_space() < 64 + SLOT);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new();
        p.insert(b"abc").unwrap();
        p.insert(b"defg").unwrap();
        let q = Page::from_bytes(p.bytes());
        assert_eq!(q.nslots(), 2);
        assert_eq!(q.tuple(1), b"defg");
    }
}
