//! Heap files: sequences of slotted pages on disk.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dv_types::{DvError, Result, Row, Schema};

use crate::page::{Page, PAGE_SIZE};
use crate::tuple;

/// Physical address of a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TupleId {
    pub page: u32,
    pub slot: u16,
}

/// Append-only heap writer used by the bulk loader (`COPY`
/// equivalent).
pub struct HeapWriter {
    out: BufWriter<File>,
    path: PathBuf,
    page: Page,
    pages_written: u32,
    tuples: u64,
    buf: Vec<u8>,
    next_xmin: u32,
}

impl HeapWriter {
    /// Create/truncate the heap file.
    pub fn create(path: &Path) -> Result<HeapWriter> {
        let file = File::create(path).map_err(|e| DvError::io(path.display().to_string(), e))?;
        Ok(HeapWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            page: Page::new(),
            pages_written: 0,
            tuples: 0,
            buf: Vec::new(),
            next_xmin: 2, // FrozenTransactionId + 1, cosmetically
        })
    }

    /// Append one row; returns its tuple id.
    pub fn insert(&mut self, row: &Row) -> Result<TupleId> {
        tuple::encode(row, self.next_xmin, &mut self.buf);
        let slot = match self.page.insert(&self.buf) {
            Some(s) => s,
            None => {
                self.flush_page()?;
                self.page.insert(&self.buf).ok_or_else(|| {
                    DvError::MiniDb(format!(
                        "tuple of {} bytes exceeds page capacity",
                        self.buf.len()
                    ))
                })?
            }
        };
        self.tuples += 1;
        Ok(TupleId { page: self.pages_written, slot })
    }

    fn flush_page(&mut self) -> Result<()> {
        self.out
            .write_all(self.page.bytes())
            .map_err(|e| DvError::io(self.path.display().to_string(), e))?;
        self.page = Page::new();
        self.pages_written += 1;
        Ok(())
    }

    /// Flush the trailing page and close; returns `(pages, tuples)`.
    pub fn finish(mut self) -> Result<(u32, u64)> {
        if self.page.nslots() > 0 {
            self.flush_page()?;
        }
        self.out.flush().map_err(|e| DvError::io(self.path.display().to_string(), e))?;
        Ok((self.pages_written, self.tuples))
    }
}

/// Read-side of a heap file.
pub struct HeapFile {
    file: File,
    path: PathBuf,
    pages: u32,
}

impl HeapFile {
    /// Open an existing heap file.
    pub fn open(path: &Path) -> Result<HeapFile> {
        let file = File::open(path).map_err(|e| DvError::io(path.display().to_string(), e))?;
        let len = file.metadata().map_err(|e| DvError::io(path.display().to_string(), e))?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DvError::MiniDb(format!(
                "heap file {} is not page-aligned ({len} bytes)",
                path.display()
            )));
        }
        Ok(HeapFile { file, path: path.to_path_buf(), pages: (len / PAGE_SIZE as u64) as u32 })
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.pages
    }

    /// Size on disk in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages as u64 * PAGE_SIZE as u64
    }

    /// Read one page.
    pub fn read_page(&self, page_no: u32) -> Result<Page> {
        use std::os::unix::fs::FileExt;
        let mut buf = [0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut buf, page_no as u64 * PAGE_SIZE as u64)
            .map_err(|e| DvError::io(self.path.display().to_string(), e))?;
        Ok(Page::from_bytes(&buf))
    }

    /// Fetch one tuple by id.
    pub fn fetch(&self, schema: &Schema, tid: TupleId) -> Result<Row> {
        let page = self.read_page(tid.page)?;
        Ok(tuple::decode(schema, page.tuple(tid.slot)))
    }

    /// Sequential scan: visit every row in heap order. Reads pages
    /// through a fresh buffered reader (streaming I/O like a real
    /// seqscan).
    pub fn scan(&self, schema: &Schema, mut visit: impl FnMut(TupleId, Row)) -> Result<()> {
        let mut reader =
            File::open(&self.path).map_err(|e| DvError::io(self.path.display().to_string(), e))?;
        reader
            .seek(SeekFrom::Start(0))
            .map_err(|e| DvError::io(self.path.display().to_string(), e))?;
        let mut buf = vec![0u8; PAGE_SIZE * 16];
        let mut page_no = 0u32;
        loop {
            let mut filled = 0usize;
            while filled < buf.len() {
                let n = reader
                    .read(&mut buf[filled..])
                    .map_err(|e| DvError::io(self.path.display().to_string(), e))?;
                if n == 0 {
                    break;
                }
                filled += n;
            }
            if filled == 0 {
                return Ok(());
            }
            for chunk in buf[..filled].chunks_exact(PAGE_SIZE) {
                let page = Page::from_bytes(chunk);
                for slot in 0..page.nslots() {
                    visit(TupleId { page: page_no, slot }, tuple::decode(schema, page.tuple(slot)));
                }
                page_no += 1;
            }
            if filled < buf.len() {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_types::{Attribute, DataType, Value};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![Attribute::new("A", DataType::Int), Attribute::new("B", DataType::Double)],
        )
        .unwrap()
    }

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dv-minidb-heap-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(format!("{tag}.heap"))
    }

    #[test]
    fn write_scan_roundtrip() {
        let path = tmpfile("roundtrip");
        let s = schema();
        let mut w = HeapWriter::create(&path).unwrap();
        let mut tids = Vec::new();
        for i in 0..5000 {
            tids.push(w.insert(&vec![Value::Int(i), Value::Double(i as f64 / 2.0)]).unwrap());
        }
        let (pages, tuples) = w.finish().unwrap();
        assert_eq!(tuples, 5000);
        assert!(pages > 1);

        let h = HeapFile::open(&path).unwrap();
        assert_eq!(h.page_count(), pages);
        let mut seen = 0i32;
        h.scan(&s, |tid, row| {
            assert_eq!(row[0], Value::Int(seen));
            assert_eq!(tid, tids[seen as usize]);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 5000);
    }

    #[test]
    fn fetch_by_tid() {
        let path = tmpfile("fetch");
        let s = schema();
        let mut w = HeapWriter::create(&path).unwrap();
        let mut tids = Vec::new();
        for i in 0..1000 {
            tids.push(w.insert(&vec![Value::Int(i), Value::Double(-(i as f64))]).unwrap());
        }
        w.finish().unwrap();
        let h = HeapFile::open(&path).unwrap();
        let row = h.fetch(&s, tids[777]).unwrap();
        assert_eq!(row[0], Value::Int(777));
        assert_eq!(row[1], Value::Double(-777.0));
    }

    #[test]
    fn storage_expansion_visible() {
        // 12 raw bytes per row inflate to 24+16 + 4 (lp) on pages.
        let path = tmpfile("expansion");
        let mut w = HeapWriter::create(&path).unwrap();
        let n = 10_000;
        for i in 0..n {
            w.insert(&vec![Value::Int(i), Value::Double(0.0)]).unwrap();
        }
        w.finish().unwrap();
        let h = HeapFile::open(&path).unwrap();
        let raw = n as u64 * 12;
        assert!(h.bytes() > raw * 3, "{} vs raw {raw}", h.bytes());
        assert!(h.bytes() < raw * 5);
    }

    #[test]
    fn misaligned_file_rejected() {
        let path = tmpfile("misaligned");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(HeapFile::open(&path).is_err());
    }
}
