//! Tuple encoding with PostgreSQL-like overhead.
//!
//! Each stored tuple is `[ 24-byte header | payload padded to 8 ]`.
//! The header mimics HeapTupleHeaderData (xmin/xmax/cid/ctid/infomask/
//! hoff — we store real values where cheap, zeros elsewhere); the
//! padding mimics MAXALIGN. This is what turns the paper's 6 GB of raw
//! Titan data into ~18 GB inside the DBMS.

use dv_types::{Row, Schema, Value};

/// Tuple header size (HeapTupleHeaderData is 23 bytes, MAXALIGNed to
/// 24).
pub const TUPLE_HEADER: usize = 24;

/// Round `n` up to the next multiple of 8 (MAXALIGN).
#[inline]
pub fn maxalign(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Encoded on-page size of a row of `schema`.
pub fn tuple_disk_size(schema: &Schema) -> usize {
    TUPLE_HEADER + maxalign(schema.row_size())
}

/// Encode a row (with a synthetic xmin transaction id) into `out`.
pub fn encode(row: &Row, xmin: u32, out: &mut Vec<u8>) {
    out.clear();
    // Header: xmin, xmax, cid, ctid(6), infomask2, infomask, hoff, pad.
    out.extend_from_slice(&xmin.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // xmax
    out.extend_from_slice(&0u32.to_le_bytes()); // cid
    out.extend_from_slice(&[0u8; 6]); // ctid
    out.extend_from_slice(&(row.len() as u16).to_le_bytes()); // infomask2 ≈ natts
    out.extend_from_slice(&0u16.to_le_bytes()); // infomask
    out.push(TUPLE_HEADER as u8); // hoff
    out.push(0); // padding to 24
    debug_assert_eq!(out.len(), TUPLE_HEADER);
    for v in row {
        v.encode(out);
    }
    let padded = TUPLE_HEADER + maxalign(out.len() - TUPLE_HEADER);
    out.resize(padded, 0);
}

/// Decode a stored tuple back into a row.
pub fn decode(schema: &Schema, bytes: &[u8]) -> Row {
    let mut row = Row::with_capacity(schema.len());
    let mut at = TUPLE_HEADER;
    for attr in schema.attributes() {
        row.push(Value::decode(attr.dtype, &bytes[at..]));
        at += attr.dtype.size();
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_types::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![
                Attribute::new("A", DataType::Short),
                Attribute::new("B", DataType::Int),
                Attribute::new("C", DataType::Double),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let s = schema();
        let row = vec![Value::Short(-5), Value::Int(123456), Value::Double(2.5)];
        let mut buf = Vec::new();
        encode(&row, 42, &mut buf);
        assert_eq!(buf.len(), tuple_disk_size(&s));
        assert_eq!(decode(&s, &buf), row);
    }

    #[test]
    fn overhead_is_postgres_like() {
        // IPARS tuple: 26 raw bytes → 24 + 32 = 56 on page (2.2× before
        // line pointers, page headers and indexes).
        let ipars_like = Schema::new(
            "I",
            vec![
                Attribute::new("REL", DataType::Short),
                Attribute::new("TIME", DataType::Int),
                Attribute::new("A", DataType::Float),
                Attribute::new("B", DataType::Float),
                Attribute::new("C", DataType::Float),
                Attribute::new("D", DataType::Float),
                Attribute::new("E", DataType::Float),
            ],
        )
        .unwrap();
        assert_eq!(ipars_like.row_size(), 26);
        assert_eq!(tuple_disk_size(&ipars_like), 56);
    }

    #[test]
    fn maxalign_math() {
        assert_eq!(maxalign(0), 0);
        assert_eq!(maxalign(1), 8);
        assert_eq!(maxalign(8), 8);
        assert_eq!(maxalign(26), 32);
    }
}
