//! Property tests for the relational baseline.
//!
//! 1. **B+tree ≡ model**: range scans over a bulk-loaded on-disk tree
//!    match a `Vec` filtered directly, for arbitrary key multisets and
//!    probe ranges (duplicates, negatives, empty ranges included).
//! 2. **Executor ≡ memory**: `query()` over a loaded table matches
//!    filtering the original rows in memory, whether the planner picks
//!    a sequential or an index scan.

use proptest::prelude::*;

use dv_minidb::btree::{build, BTreeIndex};
use dv_minidb::heap::TupleId;
use dv_minidb::MiniDb;
use dv_sql::UdfRegistry;
use dv_types::{Attribute, DataType, Schema, Table, Value};

fn tid(i: u64) -> TupleId {
    TupleId { page: (i / 64) as u32, slot: (i % 64) as u16 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn btree_range_matches_model(
        keys in prop::collection::vec(-50i64..50, 0..400),
        lo in -60i64..60,
        width in 0i64..40,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "dv-prop-btree-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.idx");

        let entries: Vec<(f64, TupleId)> =
            keys.iter().enumerate().map(|(i, &k)| (k as f64, tid(i as u64))).collect();
        build(&path, entries.clone()).unwrap();
        let idx = BTreeIndex::open(&path).unwrap();

        let hi = lo + width;
        let mut got = idx.range(lo as f64, hi as f64).unwrap();
        got.sort();
        let mut expect: Vec<TupleId> = entries
            .iter()
            .filter(|(k, _)| *k >= lo as f64 && *k <= hi as f64)
            .map(|(_, t)| *t)
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn executor_matches_memory(
        rows_raw in prop::collection::vec((-20i32..20, -10i32..10), 1..500),
        lo in -25i32..25,
        width in 0i32..20,
        use_index in any::<bool>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "dv-prop-db-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let schema = Schema::new(
            "P",
            vec![Attribute::new("K", DataType::Int), Attribute::new("V", DataType::Int)],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = rows_raw
            .iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect();

        let mut db = MiniDb::open(&dir, UdfRegistry::new()).unwrap();
        db.load_table(&schema, rows.clone().into_iter()).unwrap();
        if use_index {
            db.create_index("P", "K").unwrap();
        }

        let hi = lo + width;
        let sql = format!("SELECT K, V FROM P WHERE K >= {lo} AND K <= {hi} AND V != 3");
        let (got, _stats) = db.query(&sql).unwrap();

        let mut expect = Table::empty(schema.clone());
        for r in &rows {
            let k = r[0].as_f64() as i32;
            let v = r[1].as_f64() as i32;
            if k >= lo && k <= hi && v != 3 {
                expect.rows.push(r.clone());
            }
        }
        prop_assert!(
            got.same_rows(&expect),
            "{} rows vs expected {} (index={})",
            got.len(),
            expect.len(),
            use_index
        );
    }
}
