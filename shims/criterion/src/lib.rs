//! Offline stand-in for the `criterion` crate.
//!
//! Implements the surface the bench targets use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`/`iter_custom`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Results print as `name  median-per-iter (total iters)`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[bench] group {name}");
        BenchmarkGroup { _c: self, name, sample_size: 20, measurement_time: Duration::from_secs(1) }
    }

    /// Stand-alone benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("default");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (floor of iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget — accepted for API compatibility, ignored (the
    /// shim runs a fixed number of iterations with no warm-up phase).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            budget: self.measurement_time,
            elapsed: Duration::ZERO,
            done: 0,
        };
        f(&mut b);
        let per_iter = if b.done > 0 { b.elapsed / b.done as u32 } else { Duration::ZERO };
        eprintln!("[bench] {}/{}: {:?}/iter ({} iters)", self.name, name.into(), per_iter, b.done);
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Measurement handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    budget: Duration,
    elapsed: Duration,
    done: u64,
}

impl Bencher {
    /// Time `routine` over repeated calls until the sample count or
    /// time budget is reached.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up call outside the measurement.
        black_box(routine());
        let start = Instant::now();
        let mut done = 0u64;
        while done < self.iters && start.elapsed() < self.budget {
            black_box(routine());
            done += 1;
        }
        self.elapsed = start.elapsed();
        self.done = done.max(1);
    }

    /// Variant where the routine does its own timing over `iters`
    /// iterations and reports the elapsed time.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        let iters = self.iters.max(1);
        self.elapsed = routine(iters);
        self.done = iters;
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
