//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace ships a minimal, dependency-free implementation of the
//! slice of the proptest API the test suite uses: the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, range and tuple and
//! collection strategies, `prop_oneof!`, `any::<T>()`, and the
//! `proptest!` test macro.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case panics immediately with the standard
//! assertion message. Generation is fully deterministic per test name,
//! so failures reproduce on every run.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix special values with raw bit patterns, like upstream's
            // default f64 strategy (NaN and infinities included).
            match rng.next_u64() % 8 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::NAN,
                3 => f64::INFINITY,
                4 => f64::NEG_INFINITY,
                5 => (rng.next_u64() as i32 as f64) / 16.0,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            match rng.next_u64() % 8 {
                0 => 0.0,
                1 => -0.0,
                2 => f32::NAN,
                3 => f32::INFINITY,
                4 => f32::NEG_INFINITY,
                5 => (rng.next_u64() as i16 as f32) / 16.0,
                _ => f32::from_bits(rng.next_u64() as u32),
            }
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> crate::strategy::Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for collection strategies: an exact
    /// size or a half-open range.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec<S::Value>`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size specification.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<S::Value>`.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some with probability 3/4 (upstream defaults to mostly
            // Some as well).
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }

    /// `Option` strategy around an inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Convenience module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that evaluates its body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                let ($($arg,)+) =
                    $crate::strategy::Strategy::gen_value(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Choose uniformly between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Assert within a property body (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}
