//! Test configuration and the deterministic RNG.

/// Subset of upstream's `ProptestConfig`: only the case count is
/// honored by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator, seeded from the test name so
/// every run of a given property replays the same inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
