//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike upstream
/// proptest there is no value tree and no shrinking: a strategy is a
/// reusable generator.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.gen_value(rng)))
    }

    /// Keep only values satisfying `f`, retrying a bounded number of
    /// times before giving up with the last candidate.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        BoxedStrategy::new(move |rng| {
            for _ in 0..64 {
                let v = self.gen_value(rng);
                if f(&v) {
                    return v;
                }
            }
            self.gen_value(rng)
        })
    }

    /// Build recursive structures: `recurse` receives a strategy for
    /// the inner (shallower) level. Depth is bounded by `depth`; at
    /// every level the generator may also bottom out at `self`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng| self.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen_fn: Rc::clone(&self.gen_fn) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
