//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crate registry, so this workspace
//! ships the one crossbeam facility the runtime uses: `channel`
//! with unbounded channels whose `Sender` is `Sync` (std's mpsc
//! `Sender` is only `Send`; here it is wrapped in a `Mutex` so a
//! reference can be shared across scoped threads, matching crossbeam's
//! sharing model).

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Mutex};

    /// Sending half of an unbounded channel. Clonable and `Sync`.
    pub struct Sender<T> {
        inner: Mutex<mpsc::Sender<T>>,
    }

    impl<T> Sender<T> {
        /// Send a message; errors when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let guard = self.inner.lock().expect("sender mutex poisoned");
            guard.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let guard = self.inner.lock().expect("sender mutex poisoned");
            Sender { inner: Mutex::new(guard.clone()) }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocking iterator that ends when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Borrowed receiver iterator.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning receiver iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Error returned by [`Sender::send`] after receiver disconnect;
    /// carries the unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] after all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: Mutex::new(tx) }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn shared_sender_across_scoped_threads() {
            let (tx, rx) = unbounded::<usize>();
            std::thread::scope(|s| {
                for i in 0..4 {
                    let tx = &tx;
                    s.spawn(move || tx.send(i).unwrap());
                }
            });
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
