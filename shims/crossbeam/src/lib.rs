//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crate registry, so this workspace
//! ships the crossbeam facilities the runtime uses: `channel` with
//! unbounded and bounded channels whose `Sender` is `Sync` (std's
//! mpsc `Sender` is only `Send`; here it is wrapped in a `Mutex` so a
//! reference can be shared across scoped threads, matching crossbeam's
//! sharing model; `SyncSender` is already `Sync`).

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Mutex};

    enum SenderInner<T> {
        Unbounded(Mutex<mpsc::Sender<T>>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel. Clonable and `Sync`. For bounded
    /// channels `send` blocks while the buffer is full.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    impl<T> Sender<T> {
        /// Send a message; errors when the receiver is gone. Blocks
        /// when a bounded channel is at capacity.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => {
                    let guard = tx.lock().expect("sender mutex poisoned");
                    guard.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderInner::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Non-blocking send: on a full bounded channel the message is
        /// handed back as [`TrySendError::Full`] instead of blocking.
        /// Unbounded channels never report `Full`.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => {
                    let guard = tx.lock().expect("sender mutex poisoned");
                    guard.send(msg).map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v))
                }
                SenderInner::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Unbounded(tx) => {
                    let guard = tx.lock().expect("sender mutex poisoned");
                    SenderInner::Unbounded(Mutex::new(guard.clone()))
                }
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive: a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator that ends when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Borrowed receiver iterator.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning receiver iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Error returned by [`Sender::send`] after receiver disconnect;
    /// carries the unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`]; carries the unsent
    /// message back to the caller.
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiver disconnected.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// The message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True for the [`TrySendError::Full`] case.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] after all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: SenderInner::Unbounded(Mutex::new(tx)) }, Receiver { inner: rx })
    }

    /// Create a bounded channel: `send` blocks once `cap` messages are
    /// queued (a `cap` of 0 makes every send a rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: SenderInner::Bounded(tx) }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn shared_sender_across_scoped_threads() {
            let (tx, rx) = unbounded::<usize>();
            std::thread::scope(|s| {
                for i in 0..4 {
                    let tx = &tx;
                    s.spawn(move || tx.send(i).unwrap());
                }
            });
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded::<usize>(1);
            tx.send(1).unwrap();
            // A second send must block until the consumer drains one.
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn bounded_send_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded::<usize>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(t.join().unwrap().is_err());
        }

        #[test]
        fn try_recv_reports_empty_and_disconnected() {
            let (tx, rx) = bounded::<u8>(4);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
