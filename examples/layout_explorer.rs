//! Layout explorer: one logical dataset, seven physical layouts, one
//! descriptor each — identical answers.
//!
//! ```text
//! cargo run --release -p dv-examples --bin layout_explorer
//! ```
//!
//! This is the paper's central claim made tangible: "handling a new
//! dataset layout or virtual view only involves writing a new
//! meta-data descriptor". The same queries run unchanged against all
//! seven layouts of Figure 9; results are verified identical; per-
//! layout timings show how physical organization shifts cost without
//! touching the application.

use dv_core::Virtualizer;
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use std::time::Instant;

fn main() {
    let base = std::env::temp_dir().join("datavirt-layouts");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let cfg = IparsConfig {
        realizations: 2,
        time_steps: 40,
        grid_per_dir: 400,
        dirs: 2,
        nodes: 2,
        seed: 5,
    };
    println!("generating the same {}-row dataset in 7 layouts ...\n", cfg.rows());

    let queries = [
        ("full scan", "SELECT * FROM IparsData".to_string()),
        ("time range", "SELECT * FROM IparsData WHERE TIME >= 10 AND TIME <= 15".to_string()),
        (
            "range+filter",
            "SELECT * FROM IparsData WHERE TIME >= 10 AND TIME <= 15 AND SOIL > 0.7".to_string(),
        ),
        ("projection", "SELECT TIME, SOIL FROM IparsData WHERE REL = 0".to_string()),
    ];

    println!(
        "{:<12}{:>10}{:>14}{:>14}{:>14}{:>14}",
        "layout", "files", queries[0].0, queries[1].0, queries[2].0, queries[3].0
    );

    let mut reference: Option<Vec<dv_core::Table>> = None;
    for layout in IparsLayout::all() {
        let descriptor = ipars::generate(&base, &cfg, layout).expect("generate");
        let v = Virtualizer::builder(&descriptor).storage_base(&base).build().expect("compile");

        let mut cells = Vec::new();
        let mut results = Vec::new();
        for (_, sql) in &queries {
            let start = Instant::now();
            let (table, _) = v.query(sql).expect("query");
            cells.push(format!("{:?}", start.elapsed()));
            results.push(table);
        }
        // Verify identical answers across layouts.
        match &reference {
            None => reference = Some(results),
            Some(reference) => {
                for (i, (r, t)) in reference.iter().zip(&results).enumerate() {
                    assert!(
                        r.same_rows(t),
                        "{}: query {i} differs from L0 answer!",
                        layout.label()
                    );
                }
            }
        }
        println!(
            "{:<12}{:>10}{:>14}{:>14}{:>14}{:>14}",
            layout.label(),
            v.model().files.len(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!("\nall layouts returned identical tables ✓");

    // Show what the compiler generated for the original layout.
    let descriptor = ipars::descriptor(&cfg, IparsLayout::V);
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().expect("compile");
    println!("\n--- generated code for Layout V (excerpt) ---");
    for line in v.render_generated_code().lines().take(30) {
        println!("{line}");
    }
    println!("\n--- AFC schedule for the time-range query (excerpt) ---");
    let plan = v.explain(&queries[1].1).expect("explain");
    for line in plan.lines().take(20) {
        println!("{line}");
    }
}
