//! Quickstart: virtualize a flat-file dataset and query it with SQL.
//!
//! ```text
//! cargo run --release -p dv-examples --bin quickstart
//! ```
//!
//! Generates a small IPARS-shaped dataset (oil-reservoir simulation
//! output) in its original multi-file binary layout, writes the
//! three-component meta-data descriptor, compiles it, and runs the
//! paper's example queries against the resulting virtual table.

use dv_core::Virtualizer;
use dv_datagen::{ipars, IparsConfig, IparsLayout};

fn main() {
    let base = std::env::temp_dir().join("datavirt-quickstart");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create scratch dir");

    // 1. A scientific dataset: 2 realizations × 50 time-steps ×
    //    (2 directories × 200 grid points), 17 variables per cell,
    //    stored the way the simulator wrote it (one file per variable
    //    per realization plus a COORDS file).
    let cfg = IparsConfig {
        realizations: 2,
        time_steps: 50,
        grid_per_dir: 200,
        dirs: 2,
        nodes: 2,
        seed: 42,
    };
    println!("generating {} logical rows of IPARS data ...", cfg.rows());
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).expect("generate dataset");

    // 2. The meta-data descriptor is plain text — this is everything
    //    the administrator writes.
    std::fs::write(base.join("ipars.desc"), &descriptor).unwrap();
    println!("\n--- descriptor (first 25 lines) ---");
    for line in descriptor.lines().take(25) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", descriptor.lines().count());

    // 3. Compile the descriptor; the tool generates the index and
    //    extraction functions.
    let v =
        Virtualizer::builder(&descriptor).storage_base(&base).build().expect("compile descriptor");
    println!(
        "virtual table `{}` with {} attributes over {} files on {} nodes\n",
        v.model().dataset_name,
        v.schema().len(),
        v.model().files.len(),
        v.model().node_count()
    );

    // 4. Query it like a relational table.
    let queries = [
        "SELECT REL, TIME, X, Y, Z, SOIL FROM IparsData WHERE TIME = 10 AND SOIL > 0.9",
        "SELECT * FROM IparsData WHERE REL IN (1) AND TIME >= 20 AND TIME <= 22 AND \
         SPEED(OILVX, OILVY, OILVZ) <= 10.0",
        "SELECT TIME, SGAS FROM IparsData WHERE REL = 0 AND TIME BETWEEN 1 AND 3 AND SGAS < 0.05",
    ];
    for sql in queries {
        println!("> {sql}");
        let (table, stats) = v.query(sql).expect("query");
        println!("{table}");
        println!(
            "[{} rows selected of {} scanned; {} KiB read; {} aligned file chunks; {:?}]\n",
            stats.rows_selected,
            stats.rows_scanned,
            stats.bytes_read / 1024,
            stats.afcs,
            stats.total_time()
        );
    }

    println!("done — scratch data under {}", base.display());
}
