//! Satellite data processing (the paper's §2.2 second application).
//!
//! ```text
//! cargo run --release -p dv-examples --bin satellite
//! ```
//!
//! Queries a chunked satellite dataset by spatial/temporal box and
//! builds the composite image the paper describes: project the region
//! onto a 2-D grid and keep the "best" (here: maximum) S1 sensor value
//! that maps to each output pixel.

use dv_core::Virtualizer;
use dv_datagen::{titan, TitanConfig};

const PIXELS: usize = 16;

fn main() {
    let base = std::env::temp_dir().join("datavirt-satellite");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let cfg = TitanConfig { points: 400_000, tiles: (12, 12, 6), nodes: 2, seed: 99 };
    println!(
        "satellite dataset: {} measurements in {} spatial-temporal chunks on {} nodes",
        cfg.points,
        cfg.tiles.0 * cfg.tiles.1 * cfg.tiles.2,
        cfg.nodes
    );
    let descriptor = titan::generate(&base, &cfg).expect("generate");
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().expect("compile");

    // A region/period query: the chunk index prunes non-intersecting
    // chunks before any data is read.
    let region = "X >= 10000 AND X <= 30000 AND Y >= 20000 AND Y <= 40000 \
                  AND Z >= 0 AND Z <= 200";
    let sql = format!("SELECT X, Y, S1 FROM TitanData WHERE {region}");
    println!("\n> {sql}");
    let (table, stats) = v.query(&sql).expect("query");
    println!(
        "{} measurements selected; scanned {} (index pruned {:.0}% of the dataset); {:?}",
        table.len(),
        stats.rows_scanned,
        100.0 * (1.0 - stats.rows_scanned as f64 / cfg.points as f64),
        stats.total_time()
    );

    // Composite image: best (max) S1 per output pixel.
    let (x0, x1, y0, y1) = (10_000.0, 30_000.0, 20_000.0, 40_000.0);
    let mut image = vec![f32::NEG_INFINITY; PIXELS * PIXELS];
    for row in &table.rows {
        let x = row[0].as_f64();
        let y = row[1].as_f64();
        let s1 = row[2].as_f64() as f32;
        let px = (((x - x0) / (x1 - x0) * PIXELS as f64) as usize).min(PIXELS - 1);
        let py = (((y - y0) / (y1 - y0) * PIXELS as f64) as usize).min(PIXELS - 1);
        let cell = &mut image[py * PIXELS + px];
        *cell = cell.max(s1);
    }
    println!("\ncomposite image ({PIXELS}×{PIXELS}, max S1 per pixel):");
    for py in 0..PIXELS {
        let line: String = (0..PIXELS)
            .map(|px| {
                let v = image[py * PIXELS + px];
                if v.is_finite() {
                    // Shade by intensity.
                    b" .:-=+*#%@"[((v * 9.99) as usize).min(9)] as char
                } else {
                    ' '
                }
            })
            .collect();
        println!("  |{line}|");
    }

    // Show how selectivity scales with the box (the indexing service
    // at work).
    println!("\nchunk-index pruning as the query box grows:");
    println!("{:>10}{:>14}{:>14}{:>12}", "box side", "rows", "scanned", "time");
    for side in [5_000, 15_000, 30_000, 60_000] {
        let sql = format!(
            "SELECT X, Y, S1 FROM TitanData WHERE X >= 0 AND X <= {side} AND \
             Y >= 0 AND Y <= {side} AND Z >= 0 AND Z <= 600"
        );
        let (t, s) = v.query(&sql).expect("query");
        println!("{:>10}{:>14}{:>14}{:>12?}", side, t.len(), s.rows_scanned, s.total_time());
    }
}
