//! Oil-reservoir management analysis (the paper's §2.2 motivating
//! application).
//!
//! ```text
//! cargo run --release -p dv-examples --bin oil_reservoir
//! ```
//!
//! Runs the analysis the paper motivates — *"Find the largest bypassed
//! oil regions between time T1 and T2 in realization A"* — across
//! several realizations of a synthetic reservoir study: cells with
//! high remaining oil saturation (`SOIL > 0.7`) whose oil phase barely
//! moves (`SPEED(OILVX, OILVY, OILVZ) < 5`) are *bypassed*. The result
//! is partitioned over four client processors, as a parallel
//! post-processing tool would request, and a remote-client run shows
//! the data-mover's wide-area model.

use dv_core::{BandwidthModel, PartitionStrategy, QueryOptions, Virtualizer};
use dv_datagen::{ipars, IparsConfig, IparsLayout};

fn main() {
    let base = std::env::temp_dir().join("datavirt-oil");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let cfg = IparsConfig {
        realizations: 4,
        time_steps: 60,
        grid_per_dir: 500,
        dirs: 4,
        nodes: 4,
        seed: 2004,
    };
    println!(
        "reservoir study: {} realizations × {} time-steps × {} cells ({} rows, {} MiB raw)",
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir * cfg.dirs,
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024)
    );
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::V).expect("generate");
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().expect("compile");

    // --- bypassed-oil query per realization ---
    println!("\nbypassed oil cells (SOIL > 0.7, oil speed < 5 m/day), TIME in [20, 40]:");
    println!("{:<14}{:>12}{:>14}{:>12}", "realization", "cells", "scanned", "time");
    let mut best = (0usize, 0usize);
    for rel in 0..cfg.realizations {
        let sql = format!(
            "SELECT TIME, X, Y, Z, SOIL FROM IparsData WHERE REL = {rel} AND \
             TIME >= 20 AND TIME <= 40 AND SOIL > 0.7 AND SPEED(OILVX, OILVY, OILVZ) < 5.0"
        );
        let (table, stats) = v.query(&sql).expect("query");
        println!(
            "{:<14}{:>12}{:>14}{:>12?}",
            rel,
            table.len(),
            stats.rows_scanned,
            stats.total_time()
        );
        if table.len() > best.1 {
            best = (rel, table.len());
        }
    }
    println!("→ realization {} has the largest bypassed region ({} cells)", best.0, best.1);

    // --- parallel client: partition over 4 processors ---
    let opts = QueryOptions {
        client_processors: 4,
        partition: PartitionStrategy::RoundRobin,
        ..Default::default()
    };
    let sql = format!(
        "SELECT TIME, X, Y, Z, SOIL FROM IparsData WHERE REL = {} AND TIME >= 20 AND \
         TIME <= 40 AND SOIL > 0.7",
        best.0
    );
    let (tables, stats) = v.query_with(&sql, &opts).expect("partitioned query");
    println!("\npartitioned delivery to 4 client processors:");
    for (p, t) in tables.iter().enumerate() {
        println!("  processor {p}: {} rows", t.len());
    }
    println!("  ({} KiB moved in {:?})", stats.bytes_moved / 1024, stats.exec_time);

    // --- remote client over a simulated wide-area link ---
    let remote =
        QueryOptions { bandwidth: Some(BandwidthModel::wide_area()), ..Default::default() };
    let sql = format!(
        "SELECT TIME, SOIL FROM IparsData WHERE REL = {} AND TIME >= 20 AND TIME <= 25",
        best.0
    );
    let (local_t, local_s) = v.query(&sql).expect("local");
    let (_remote_t, remote_s) = v.query_with(&sql, &remote).expect("remote");
    println!(
        "\nremote client (10 Mbit/s WAN): {} rows — local {:?} vs remote {:?}",
        local_t.len(),
        local_s.exec_time,
        remote_s.exec_time
    );
}
